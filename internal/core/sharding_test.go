package core

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"securestore/internal/checker"
	"securestore/internal/wire"
)

// TestMultiGroupTopology checks the shape of a sharded cluster: G
// disjoint replica groups with per-group names, a signed table clients
// can verify, the single-group client conveniences (ServerOrder) refused
// rather than silently misrouted, and the fragstore routing each item's
// fragments to the servers of its owning group.
func TestMultiGroupTopology(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{N: 4, B: 1, Groups: 2, Seed: t.Name()})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	if cluster.Groups() != 2 {
		t.Fatalf("Groups() = %d, want 2", cluster.Groups())
	}
	if len(cluster.Servers) != 8 || len(cluster.GroupServers) != 2 {
		t.Fatalf("got %d servers in %d groups, want 8 in 2", len(cluster.Servers), len(cluster.GroupServers))
	}
	if got := cluster.ServerNames[0]; got != "g00-s00" {
		t.Fatalf("first server named %q, want g00-s00", got)
	}
	if got := cluster.ServerNames[7]; got != "g01-s03" {
		t.Fatalf("last server named %q, want g01-s03", got)
	}
	if cluster.Table == nil {
		t.Fatal("sharded cluster has no shard table")
	}
	if err := cluster.Table.Verify(cluster.Ring, nil); err != nil {
		t.Fatalf("cluster shard table does not verify: %v", err)
	}

	group := GroupSpec{Name: "g", Consistency: wire.MRC}
	cluster.RegisterGroup(group)

	spec := fastSpec("alice", "g")
	spec.ServerOrder = append([]string(nil), cluster.ServerNames...)
	if _, err := cluster.NewClient(spec, group); err == nil {
		t.Fatal("ServerOrder accepted on a sharded cluster")
	}
	// The fragstore is shard-aware: each item is dispersed across the
	// servers of its owning group only, and reconstructs from them.
	frag, err := cluster.NewFragStore(fastSpec("frag", "g"), group, 2)
	if err != nil {
		t.Fatalf("fragstore on a sharded cluster: %v", err)
	}
	ctx := context.Background()
	for shard, item := range itemsPerShard(t, cluster, "frag") {
		want := []byte("dispersed-on-" + shard)
		if _, err := frag.Write(ctx, item, want); err != nil {
			t.Fatalf("frag write %s (shard %s): %v", item, shard, err)
		}
		got, _, err := frag.Read(ctx, item)
		if err != nil {
			t.Fatalf("frag read %s (shard %s): %v", item, shard, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frag read %s = %q, want %q", item, got, want)
		}
		// Fragments must not leak outside the owning group.
		for gi, servers := range cluster.GroupServers {
			owns := cluster.Table.Shards[gi].Name == shard
			for _, srv := range servers {
				if head := srv.Head("g", item); (head != nil) != owns {
					t.Fatalf("server %s (owns=%v) head=%v for %s", srv.ID(), owns, head != nil, item)
				}
			}
		}
	}

	alice, err := cluster.NewClient(fastSpec("alice", "g"), group)
	if err != nil {
		t.Fatal(err)
	}
	mustConnect(t, alice)

	// Round-trip one item per shard so both groups serve traffic.
	ctx = context.Background()
	byShard := itemsPerShard(t, cluster, "topo")
	for shard, item := range byShard {
		want := []byte("owned-by-" + shard)
		if _, err := alice.Write(ctx, item, want); err != nil {
			t.Fatalf("write %s (shard %s): %v", item, shard, err)
		}
		got, _, err := alice.Read(ctx, item)
		if err != nil {
			t.Fatalf("read %s (shard %s): %v", item, shard, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("read %s = %q, want %q", item, got, want)
		}
	}
}

// itemsPerShard finds one item name homed on each shard of the cluster's
// table, so tests can deliberately spread traffic across every group.
func itemsPerShard(t *testing.T, cluster *Cluster, prefix string) map[string]string {
	t.Helper()
	byShard := make(map[string]string, len(cluster.Table.Shards))
	for i := 0; len(byShard) < len(cluster.Table.Shards); i++ {
		if i > 10000 {
			t.Fatal("could not find an item for every shard")
		}
		item := fmt.Sprintf("%s-%04d", prefix, i)
		shard := cluster.Table.ShardFor(item).Name
		if _, ok := byShard[shard]; !ok {
			byShard[shard] = item
		}
	}
	return byShard
}

// TestMultiGroupSoak drives concurrent client sessions against a 2-group
// cluster — every operation recorded into an internal/checker History —
// and requires the checker to certify the full run: integrity (every read
// returns a written value), MRC, read-your-writes, and causal consistency
// across the shard boundary. Run under -race in CI, this is the
// regression net for the client's routing and cross-shard gating.
func TestMultiGroupSoak(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{N: 4, B: 1, Groups: 2, Seed: t.Name()})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	group := GroupSpec{Name: "g", Consistency: wire.CC}
	cluster.RegisterGroup(group)

	history := checker.New()
	ctx := context.Background()

	const sessions = 4
	const rounds = 12
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		cl, err := cluster.NewClient(fastSpec(fmt.Sprintf("soaker%d", s), "g"), group)
		if err != nil {
			t.Fatal(err)
		}
		mustConnect(t, cl)
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Item names vary per (session, round), so the rendezvous
				// hash spreads this session's writes across both groups and
				// successive CC writes routinely cross the shard boundary —
				// exactly the path the client's cross-shard gate serializes.
				item := fmt.Sprintf("soak-%d-%d", s, r%6)
				value := []byte(fmt.Sprintf("s%d-r%d", s, r))
				stamp, err := cl.Write(ctx, item, value)
				if err != nil {
					errs <- fmt.Errorf("session %d round %d: write %s: %w", s, r, item, err)
					return
				}
				history.RecordWrite(cl.ID(), item, stamp, value, cl.Context())

				readBack := fmt.Sprintf("soak-%d-%d", s, (r+3)%6)
				got, rstamp, err := cl.Read(ctx, readBack)
				if err != nil {
					continue // transient unavailability is allowed; safety is checked below
				}
				history.RecordRead(cl.ID(), readBack, rstamp, got)
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	cluster.Converge()
	writes, reads := history.Stats()
	if writes == 0 || reads == 0 {
		t.Fatalf("soak recorded %d writes, %d reads — harness drove no load", writes, reads)
	}
	if violations := history.Check(); len(violations) != 0 {
		for _, v := range violations {
			t.Errorf("%s violation: client %s item %s: %s", v.Kind, v.Client, v.Item, v.Detail)
		}
	}
}

// TestMultiGroupCrossShardCausal pins the cross-shard causal pair down
// deterministically: dep and doc live on different shards, the writer
// always writes dep then doc, and a reader that sees doc must then see a
// dep at least as new as the one the writer had — even though the two
// groups share no servers, no WAL and no gossip mesh. The ordering
// survives on the client side alone (routing + the cross-shard gate).
func TestMultiGroupCrossShardCausal(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{N: 4, B: 1, Groups: 2, Seed: t.Name()})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	group := GroupSpec{Name: "g", Consistency: wire.CC}
	cluster.RegisterGroup(group)

	byShard := itemsPerShard(t, cluster, "causal")
	dep := byShard[cluster.Table.Shards[0].Name]
	doc := byShard[cluster.Table.Shards[1].Name]

	ctx := context.Background()
	writer, err := cluster.NewClient(fastSpec("writer", "g"), group)
	if err != nil {
		t.Fatal(err)
	}
	mustConnect(t, writer)
	reader, err := cluster.NewClient(fastSpec("reader", "g"), group)
	if err != nil {
		t.Fatal(err)
	}
	mustConnect(t, reader)

	for v := 1; v <= 5; v++ {
		payload := []byte(fmt.Sprintf("v%d", v))
		if _, err := writer.Write(ctx, dep, payload); err != nil {
			t.Fatalf("write dep v%d: %v", v, err)
		}
		if _, err := writer.Write(ctx, doc, payload); err != nil {
			t.Fatalf("write doc v%d: %v", v, err)
		}
		gotDoc, _, err := reader.Read(ctx, doc)
		if err != nil {
			t.Fatalf("read doc v%d: %v", v, err)
		}
		gotDep, _, err := reader.Read(ctx, dep)
		if err != nil {
			t.Fatalf("read dep after doc v%d: %v", v, err)
		}
		if string(gotDep) < string(gotDoc) {
			t.Fatalf("causality across shards violated: doc=%q but dep=%q", gotDoc, gotDep)
		}
	}
}
