package core

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"securestore/internal/accessctl"
	"securestore/internal/client"
	"securestore/internal/cryptoutil"
	"securestore/internal/metrics"
	"securestore/internal/quorum"
	"securestore/internal/server"
	"securestore/internal/wire"
)

func newTestCluster(t *testing.T, n, b int) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{N: n, B: b, Seed: t.Name()})
	if err != nil {
		t.Fatalf("NewCluster(%d,%d): %v", n, b, err)
	}
	t.Cleanup(c.Close)
	return c
}

func mustConnect(t *testing.T, c *client.Client) {
	t.Helper()
	if err := c.Connect(context.Background()); err != nil {
		t.Fatalf("connect %s: %v", c.ID(), err)
	}
}

func fastSpec(id, group string) ClientSpec {
	return ClientSpec{
		ID:           id,
		Group:        group,
		CallTimeout:  500 * time.Millisecond,
		ReadRetries:  2,
		RetryBackoff: 5 * time.Millisecond,
	}
}

func TestSingleWriterMRCRoundTrip(t *testing.T) {
	cluster := newTestCluster(t, 4, 1)
	group := GroupSpec{Name: "tax", Consistency: wire.MRC}
	cluster.RegisterGroup(group)

	alice, err := cluster.NewClient(fastSpec("alice", "tax"), group)
	if err != nil {
		t.Fatal(err)
	}
	mustConnect(t, alice)

	ctx := context.Background()
	if _, err := alice.Write(ctx, "return-2025", []byte("v1")); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, _, err := alice.Read(ctx, "return-2025")
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, []byte("v1")) {
		t.Fatalf("read = %q, want v1", got)
	}

	// Overwrite and read again: must see the newer value.
	if _, err := alice.Write(ctx, "return-2025", []byte("v2")); err != nil {
		t.Fatalf("write v2: %v", err)
	}
	got, _, err = alice.Read(ctx, "return-2025")
	if err != nil {
		t.Fatalf("read v2: %v", err)
	}
	if !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("read = %q, want v2", got)
	}
}

func TestContextSurvivesSessions(t *testing.T) {
	cluster := newTestCluster(t, 4, 1)
	group := GroupSpec{Name: "g", Consistency: wire.MRC}
	cluster.RegisterGroup(group)

	c1, err := cluster.NewClient(fastSpec("alice", "g"), group)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	mustConnect(t, c1)
	stamp, err := c1.Write(ctx, "x", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Disconnect(ctx); err != nil {
		t.Fatalf("disconnect: %v", err)
	}

	// A new session must restore a context that includes the write.
	c2, err := cluster.NewClient(fastSpec("alice", "g"), group)
	if err != nil {
		t.Fatal(err)
	}
	mustConnect(t, c2)
	if got := c2.Context().Get("x"); got != stamp {
		t.Fatalf("restored context stamp = %v, want %v", got, stamp)
	}
	if c2.ContextSeq() != 1 {
		t.Fatalf("context seq = %d, want 1", c2.ContextSeq())
	}
}

func TestMRCMonotonicAcrossReaders(t *testing.T) {
	// Single writer, one reader: once the reader has seen v2 it must never
	// be handed v1 again, even when only stale replicas answer first.
	cluster := newTestCluster(t, 4, 1)
	group := GroupSpec{Name: "news", Consistency: wire.MRC}
	cluster.RegisterGroup(group)

	writer, err := cluster.NewClient(fastSpec("school", "news"), group)
	if err != nil {
		t.Fatal(err)
	}
	reader, err := cluster.NewClient(fastSpec("family", "news"), group)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	mustConnect(t, writer)
	mustConnect(t, reader)

	if _, err := writer.Write(ctx, "bulletin", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	cluster.Converge()
	if _, _, err := reader.Read(ctx, "bulletin"); err != nil {
		t.Fatal(err)
	}

	if _, err := writer.Write(ctx, "bulletin", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	cluster.Converge()
	got, _, err := reader.Read(ctx, "bulletin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("read = %q, want v2", got)
	}

	// Re-reads can never go backwards.
	for i := 0; i < 3; i++ {
		got, _, err := reader.Read(ctx, "bulletin")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, []byte("v2")) {
			t.Fatalf("read %d = %q, want v2 (MRC violation)", i, got)
		}
	}
}

func TestCausalConsistencySingleWriterPair(t *testing.T) {
	// Writer writes x=v1 then y=v2 (y causally after x). A reader that
	// sees y must not then read an older x than the writer had.
	cluster := newTestCluster(t, 4, 1)
	group := GroupSpec{Name: "plan", Consistency: wire.CC}
	cluster.RegisterGroup(group)

	writer, err := cluster.NewClient(fastSpec("w", "plan"), group)
	if err != nil {
		t.Fatal(err)
	}
	reader, err := cluster.NewClient(fastSpec("r", "plan"), group)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	mustConnect(t, writer)
	mustConnect(t, reader)

	xStamp, err := writer.Write(ctx, "x", []byte("x1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Write(ctx, "y", []byte("y1")); err != nil {
		t.Fatal(err)
	}
	cluster.Converge()

	if _, _, err := reader.Read(ctx, "y"); err != nil {
		t.Fatal(err)
	}
	// Reading y merged the writer's context: x's floor is now >= xStamp.
	if got := reader.Context().Get("x"); got.Less(xStamp) {
		t.Fatalf("reader context for x = %v, want >= %v (causal dependency lost)", got, xStamp)
	}
	val, stamp, err := reader.Read(ctx, "x")
	if err != nil {
		t.Fatal(err)
	}
	if stamp.Less(xStamp) {
		t.Fatalf("read x stamp %v older than causal floor %v", stamp, xStamp)
	}
	if !bytes.Equal(val, []byte("x1")) {
		t.Fatalf("read x = %q, want x1", val)
	}
}

func TestByzantineFaultsMasked(t *testing.T) {
	tests := []struct {
		name string
		mode server.FaultMode
	}{
		{"crash", server.Crash},
		{"stale", server.Stale},
		{"corrupt-value", server.CorruptValue},
		{"corrupt-meta", server.CorruptMeta},
		{"equivocate", server.Equivocate},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cluster := newTestCluster(t, 4, 1)
			group := GroupSpec{Name: "g", Consistency: wire.MRC}
			cluster.RegisterGroup(group)

			w, err := cluster.NewClient(fastSpec("alice", "g"), group)
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			mustConnect(t, w)
			if _, err := w.Write(ctx, "x", []byte("v1")); err != nil {
				t.Fatal(err)
			}
			cluster.Converge()

			cluster.InjectFaults(tt.mode, 1)
			if _, err := w.Write(ctx, "x", []byte("v2")); err != nil {
				t.Fatalf("write with %s fault: %v", tt.mode, err)
			}
			cluster.Converge()
			got, _, err := w.Read(ctx, "x")
			if err != nil {
				t.Fatalf("read with %s fault: %v", tt.mode, err)
			}
			if !bytes.Equal(got, []byte("v2")) {
				t.Fatalf("read = %q with %s fault, want v2", got, tt.mode)
			}
			if err := w.Disconnect(ctx); err != nil {
				t.Fatalf("disconnect with %s fault: %v", tt.mode, err)
			}
		})
	}
}

func TestMultiWriterReadRequiresMatching(t *testing.T) {
	cluster := newTestCluster(t, 4, 1)
	group := GroupSpec{Name: "shared", Consistency: wire.CC, MultiWriter: true}
	cluster.RegisterGroup(group)

	a, err := cluster.NewClient(fastSpec("a", "shared"), group)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cluster.NewClient(fastSpec("b", "shared"), group)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	mustConnect(t, a)
	mustConnect(t, b)

	if _, err := a.Write(ctx, "doc", []byte("from-a")); err != nil {
		t.Fatal(err)
	}
	cluster.Converge()

	got, _, err := b.Read(ctx, "doc")
	if err != nil {
		t.Fatalf("multi-writer read: %v", err)
	}
	if !bytes.Equal(got, []byte("from-a")) {
		t.Fatalf("read = %q, want from-a", got)
	}

	// b writes on top; a must see it after dissemination.
	if _, err := b.Write(ctx, "doc", []byte("from-b")); err != nil {
		t.Fatal(err)
	}
	cluster.Converge()
	got, _, err = a.Read(ctx, "doc")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("from-b")) {
		t.Fatalf("read = %q, want from-b", got)
	}
}

func TestMultiWriterPrematureReportMasked(t *testing.T) {
	// A faulty server reports a gated (causally premature) write; the b+1
	// matching rule must prevent a reader from accepting it.
	cluster := newTestCluster(t, 4, 1)
	group := GroupSpec{Name: "shared", Consistency: wire.CC, MultiWriter: true}
	cluster.RegisterGroup(group)

	a, err := cluster.NewClient(fastSpec("a", "shared"), group)
	if err != nil {
		t.Fatal(err)
	}
	r, err := cluster.NewClient(fastSpec("r", "shared"), group)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	mustConnect(t, a)
	mustConnect(t, r)

	// Baseline value everywhere.
	if _, err := a.Write(ctx, "doc", []byte("base")); err != nil {
		t.Fatal(err)
	}
	cluster.Converge()

	// Make one server report prematurely, then create a gated write: a
	// writes "dep" only to servers (gossip off), then writes doc with a
	// context naming a dep stamp that most servers have not seen.
	cluster.InjectFaults(server.PrematureReport, 1)

	if _, err := a.Write(ctx, "dep", []byte("dep-v")); err != nil {
		t.Fatal(err)
	}
	// No convergence: dep exists at only b+1 servers. The next write's
	// context names dep, so servers without dep must gate it.
	if _, err := a.Write(ctx, "doc", []byte("premature")); err != nil {
		t.Fatal(err)
	}

	got, _, err := r.Read(ctx, "doc")
	if err != nil {
		// Acceptable: reader cannot assemble b+1 matches for the new value
		// and still has the base value available only if enough servers
		// report it.
		t.Logf("read failed as allowed: %v", err)
		return
	}
	if bytes.Equal(got, []byte("premature")) {
		// The reader may only accept "premature" if b+1 servers report it,
		// which requires a non-faulty server to have cleared gating.
		depArrived := 0
		for _, srv := range cluster.Servers {
			if srv.Head("shared", "dep") != nil {
				depArrived++
			}
		}
		if depArrived < cluster.B()+1 {
			t.Fatalf("reader accepted prematurely reported write backed by <b+1 honest servers")
		}
	}
}

func TestConfidentialityEndToEnd(t *testing.T) {
	cluster := newTestCluster(t, 4, 1)
	group := GroupSpec{Name: "private", Consistency: wire.MRC}
	cluster.RegisterGroup(group)

	key := cryptoutil.DeriveDataKey("passphrase", "private")
	spec := fastSpec("owner", "private")
	spec.DataKey = &key
	owner, err := cluster.NewClient(spec, group)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	mustConnect(t, owner)

	secret := []byte("medical record: blood type AB-")
	if _, err := owner.Write(ctx, "record", secret); err != nil {
		t.Fatal(err)
	}

	// Servers must hold only ciphertext.
	cluster.Converge()
	for _, srv := range cluster.Servers {
		if w := srv.Head("private", "record"); w != nil && bytes.Contains(w.Value, []byte("blood type")) {
			t.Fatalf("server %s stores plaintext", srv.ID())
		}
	}

	got, _, err := owner.Read(ctx, "record")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatalf("read = %q, want original secret", got)
	}
}

func TestContextReconstruction(t *testing.T) {
	cluster := newTestCluster(t, 4, 1)
	group := GroupSpec{Name: "g", Consistency: wire.MRC}
	cluster.RegisterGroup(group)

	c1, err := cluster.NewClient(fastSpec("alice", "g"), group)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	mustConnect(t, c1)
	s1, err := c1.Write(ctx, "x", []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c1.Write(ctx, "y", []byte("v2"))
	if err != nil {
		t.Fatal(err)
	}
	// Session crashes here: no Disconnect. A new session reconstructs from
	// the data items themselves (Section 5.1).
	cluster.Converge()

	c2, err := cluster.NewClient(fastSpec("alice", "g"), group)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.ReconstructContext(ctx, []string{"x", "y"}); err != nil {
		t.Fatalf("reconstruct: %v", err)
	}
	if got := c2.Context().Get("x"); got != s1 {
		t.Fatalf("reconstructed x = %v, want %v", got, s1)
	}
	if got := c2.Context().Get("y"); got != s2 {
		t.Fatalf("reconstructed y = %v, want %v", got, s2)
	}
}

func TestStaleReadEventuallyErrStale(t *testing.T) {
	// If the only servers holding the fresh value are unreachable, the
	// read must fail with ErrStale rather than return an old value.
	cluster := newTestCluster(t, 4, 1)
	group := GroupSpec{Name: "g", Consistency: wire.MRC}
	cluster.RegisterGroup(group)

	w, err := cluster.NewClient(fastSpec("alice", "g"), group)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	mustConnect(t, w)
	if _, err := w.Write(ctx, "x", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	cluster.Converge()
	if _, err := w.Write(ctx, "x", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	// v2 reached servers s00, s01 (b+1 = 2). Crash both — two faults,
	// exceeding b=1. Availability may be lost, but safety must hold: the
	// read fails (stale or insufficient quorum) rather than silently
	// returning the old v1 the surviving servers hold.
	cluster.Servers[0].SetFault(server.Crash)
	cluster.Servers[1].SetFault(server.Crash)

	_, _, err = w.Read(ctx, "x")
	if err == nil {
		t.Fatal("read succeeded; want failure (fresh copies unreachable)")
	}
	if !errors.Is(err, client.ErrStale) && !errors.Is(err, quorum.ErrInsufficient) {
		t.Fatalf("read error = %v, want ErrStale or ErrInsufficient", err)
	}
}

func TestMessageCountsMatchPaperFormulas(t *testing.T) {
	// Section 6: context ops exchange 2*ceil((n+b+1)/2) messages; a data
	// write exchanges 2*(b+1) (request+reply per contacted server).
	n, b := 7, 2
	cluster := newTestCluster(t, n, b)
	group := GroupSpec{Name: "g", Consistency: wire.MRC}
	cluster.RegisterGroup(group)

	m := &metrics.Counters{}
	spec := fastSpec("alice", "g")
	spec.Metrics = m
	c, err := cluster.NewClient(spec, group)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	mustConnect(t, c)

	m.Reset()
	if _, err := c.Write(ctx, "x", []byte("v")); err != nil {
		t.Fatal(err)
	}
	wantWrite := int64(2 * (b + 1))
	if got := m.MessagesSent(); got != wantWrite {
		t.Fatalf("write messages = %d, want %d", got, wantWrite)
	}

	m.Reset()
	if err := c.Disconnect(ctx); err != nil {
		t.Fatal(err)
	}
	q := (n + b + 2) / 2 // ceil((n+b+1)/2)
	wantCtx := int64(2 * q)
	if got := m.MessagesSent(); got != wantCtx {
		t.Fatalf("context write messages = %d, want %d", got, wantCtx)
	}
}

func TestUnauthorizedClientRejected(t *testing.T) {
	cluster := newTestCluster(t, 4, 1)
	group := GroupSpec{Name: "g", Consistency: wire.MRC}
	cluster.RegisterGroup(group)

	spec := fastSpec("mallory", "g")
	spec.Rights = accessctlReadOnly()
	c, err := cluster.NewClient(spec, group)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	mustConnect(t, c)
	if _, err := c.Write(ctx, "x", []byte("v")); err == nil {
		t.Fatal("write with read-only token succeeded; want rejection")
	}
}

// accessctlReadOnly avoids importing accessctl twice in the test header.
func accessctlReadOnly() accessctl.Rights { return accessctl.ReadOnly }
