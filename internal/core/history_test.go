package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"securestore/internal/checker"
	"securestore/internal/client"
	"securestore/internal/server"
	"securestore/internal/wire"
)

// TestHistoryCheckedSoak records every completed operation into the
// offline consistency checker while random faults (within the bound)
// churn underneath, then verifies the full history satisfies integrity,
// MRC and CC. Unlike the inline assertions in soak_test.go, the checker
// sees the global history, so cross-item causal breaches cannot hide.
func TestHistoryCheckedSoak(t *testing.T) {
	for _, mw := range []bool{false, true} {
		mw := mw
		name := "single-writer"
		if mw {
			name = "multi-writer"
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			runHistorySoak(t, mw)
		})
	}
}

func runHistorySoak(t *testing.T, multiWriter bool) {
	rng := rand.New(rand.NewSource(11))
	cluster := newTestCluster(t, 7, 2)
	group := GroupSpec{Name: "g", Consistency: wire.CC, MultiWriter: multiWriter}
	cluster.RegisterGroup(group)
	ctx := context.Background()
	hist := checker.New()

	items := []string{"a", "b", "c"}

	newClient := func(id string) *client.Client {
		cl, err := cluster.NewClient(fastSpec(id, "g"), group)
		if err != nil {
			t.Fatal(err)
		}
		mustConnect(t, cl)
		return cl
	}
	writers := []*client.Client{newClient("w0")}
	if multiWriter {
		writers = append(writers, newClient("w1"))
	}
	readers := []*client.Client{newClient("r0"), newClient("r1")}

	faultModes := []server.FaultMode{server.Crash, server.Stale, server.CorruptValue, server.Equivocate}
	faulty := 0
	seq := 0
	for round := 0; round < 80; round++ {
		switch rng.Intn(10) {
		case 0, 1, 2: // write
			w := writers[rng.Intn(len(writers))]
			item := items[rng.Intn(len(items))]
			seq++
			value := []byte(fmt.Sprintf("%s=%d by %s", item, seq, w.ID()))
			stamp, err := w.Write(ctx, item, value)
			if err != nil {
				t.Fatalf("round %d: write within fault bound failed: %v", round, err)
			}
			// Record the embedded context exactly as the write carried it
			// (CC: the writer's context including this write's own stamp).
			wctx := w.Context()
			hist.RecordWrite(w.ID(), item, stamp, value, wctx)
		case 3, 4, 5, 6, 7: // read
			r := readers[rng.Intn(len(readers))]
			item := items[rng.Intn(len(items))]
			value, stamp, err := r.Read(ctx, item)
			if err != nil {
				continue // unavailability under churn is allowed
			}
			hist.RecordRead(r.ID(), item, stamp, value)
		case 8: // gossip
			cluster.Converge()
		case 9: // churn faults within the bound
			cluster.HealAll()
			faulty = rng.Intn(3) // 0..2 <= b
			for i := 0; i < faulty; i++ {
				cluster.Servers[rng.Intn(7)].SetFault(faultModes[rng.Intn(len(faultModes))])
			}
		}
	}

	writes, reads := hist.Stats()
	if writes == 0 || reads == 0 {
		t.Fatalf("degenerate run: %d writes, %d reads", writes, reads)
	}
	for _, v := range hist.Check() {
		t.Errorf("%s", v)
	}
}
