package core

import (
	"bytes"
	"context"
	"testing"
	"time"

	"securestore/internal/gossip"
	"securestore/internal/server"
	"securestore/internal/wire"
)

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{N: 3, B: 1}); err == nil {
		t.Fatal("accepted n=3 b=1")
	}
	if _, err := NewCluster(ClusterConfig{N: 0, B: 0}); err == nil {
		t.Fatal("accepted n=0")
	}
}

func TestClientSpecValidation(t *testing.T) {
	cluster := newTestCluster(t, 4, 1)
	group := GroupSpec{Name: "g", Consistency: wire.MRC}
	cluster.RegisterGroup(group)

	if _, err := cluster.NewClient(ClientSpec{Group: "g"}, group); err == nil {
		t.Fatal("accepted empty client ID")
	}
	if _, err := cluster.NewClient(ClientSpec{ID: "a", Group: "other"}, group); err == nil {
		t.Fatal("accepted mismatched group")
	}
	bad := fastSpec("a", "g")
	bad.ServerOrder = []string{"s00"}
	if _, err := cluster.NewClient(bad, group); err == nil {
		t.Fatal("accepted short ServerOrder")
	}
}

func TestServerOrderRespected(t *testing.T) {
	cluster := newTestCluster(t, 4, 1)
	group := GroupSpec{Name: "g", Consistency: wire.MRC}
	cluster.RegisterGroup(group)
	ctx := context.Background()

	// A writer that prefers the high-index servers: its b+1 write set
	// lands on s03, s02 instead of s00, s01.
	spec := fastSpec("alice", "g")
	spec.ServerOrder = []string{"s03", "s02", "s01", "s00"}
	alice, err := cluster.NewClient(spec, group)
	if err != nil {
		t.Fatal(err)
	}
	mustConnect(t, alice)
	if _, err := alice.Write(ctx, "x", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if cluster.Servers[3].Head("g", "x") == nil || cluster.Servers[2].Head("g", "x") == nil {
		t.Fatal("write did not land on the preferred servers")
	}
	if cluster.Servers[0].Head("g", "x") != nil {
		t.Fatal("write reached a non-preferred server without gossip")
	}
}

func TestFragStoreViaFacade(t *testing.T) {
	cluster := newTestCluster(t, 5, 1)
	group := GroupSpec{Name: "vault", Consistency: wire.MRC}
	cluster.RegisterGroup(group)
	ctx := context.Background()

	fs, err := cluster.NewFragStore(ClientSpec{ID: "owner", Group: "vault"}, group, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fs.K() != 2 {
		t.Fatalf("default k = %d, want b+1 = 2", fs.K())
	}
	data := []byte("facade-built fragmented value")
	if _, err := fs.Write(ctx, "doc", data); err != nil {
		t.Fatal(err)
	}
	got, _, err := fs.Read(ctx, "doc")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read = %q", got)
	}

	// The authority's token is enforced for fragment writes too: a
	// read-only principal cannot write fragments.
	ro := ClientSpec{ID: "peeker", Group: "vault", Rights: accessctlReadOnly()}
	fs2, err := cluster.NewFragStore(ro, group, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs2.Write(ctx, "doc", []byte("nope")); err == nil {
		t.Fatal("read-only principal dispersed a write")
	}
}

func TestPullModeClusterConverges(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{
		N: 4, B: 1, Seed: t.Name(), GossipMode: gossip.Pull,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	group := GroupSpec{Name: "g", Consistency: wire.MRC}
	cluster.RegisterGroup(group)
	ctx := context.Background()

	alice, err := cluster.NewClient(fastSpec("alice", "g"), group)
	if err != nil {
		t.Fatal(err)
	}
	mustConnect(t, alice)
	if _, err := alice.Write(ctx, "x", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Drive pull rounds: every server fetches what it misses.
	for sweep := 0; sweep < 10; sweep++ {
		moved := 0
		for _, e := range cluster.Engines {
			moved += e.PullAll()
		}
		if moved == 0 {
			break
		}
	}
	for _, srv := range cluster.Servers {
		if srv.Head("g", "x") == nil {
			t.Fatalf("server %s missing the write under pull gossip", srv.ID())
		}
	}
}

func TestInjectAndHealFaults(t *testing.T) {
	cluster := newTestCluster(t, 4, 1)
	names := cluster.InjectFaults(server.Stale, 2)
	if len(names) != 2 {
		t.Fatalf("injected %d, want 2", len(names))
	}
	if cluster.Servers[0].Fault() != server.Stale || cluster.Servers[1].Fault() != server.Stale {
		t.Fatal("fault modes not applied")
	}
	cluster.HealAll()
	for _, srv := range cluster.Servers {
		if srv.Fault() != server.Healthy {
			t.Fatalf("server %s not healed", srv.ID())
		}
	}
	if cluster.N() != 4 || cluster.B() != 1 {
		t.Fatal("accessors wrong")
	}
}

func TestClusterPersistenceSurvivesRestart(t *testing.T) {
	dataDir := t.TempDir()
	group := GroupSpec{Name: "g", Consistency: wire.MRC}
	ctx := context.Background()

	boot := func() *Cluster {
		c, err := NewCluster(ClusterConfig{N: 4, B: 1, Seed: "persist", DataDir: dataDir, Principals: []string{"alice"}})
		if err != nil {
			t.Fatal(err)
		}
		c.RegisterGroup(group)
		return c
	}

	c1 := boot()
	alice, err := c1.NewClient(fastSpec("alice", "g"), group)
	if err != nil {
		t.Fatal(err)
	}
	mustConnect(t, alice)
	stamp, err := alice.Write(ctx, "x", []byte("durable"))
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.Disconnect(ctx); err != nil {
		t.Fatal(err)
	}
	c1.Close() // "power off" the whole cluster

	c2 := boot()
	defer c2.Close()
	alice2, err := c2.NewClient(fastSpec("alice", "g"), group)
	if err != nil {
		t.Fatal(err)
	}
	mustConnect(t, alice2)
	if alice2.ContextSeq() != 1 {
		t.Fatalf("context seq after restart = %d, want 1", alice2.ContextSeq())
	}
	got, gotStamp, err := alice2.Read(ctx, "x")
	if err != nil {
		t.Fatalf("read after restart: %v", err)
	}
	if !bytes.Equal(got, []byte("durable")) || gotStamp != stamp {
		t.Fatalf("read = %q @ %v, want durable @ %v", got, gotStamp, stamp)
	}
}

func TestStartGossipBackgroundDelivery(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{
		N: 4, B: 1, Seed: t.Name(), GossipInterval: 5 * time.Millisecond, GossipFanout: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	group := GroupSpec{Name: "g", Consistency: wire.MRC}
	cluster.RegisterGroup(group)
	ctx := context.Background()

	alice, err := cluster.NewClient(fastSpec("alice", "g"), group)
	if err != nil {
		t.Fatal(err)
	}
	mustConnect(t, alice)
	cluster.StartGossip()
	cluster.StartGossip() // idempotent

	if _, err := alice.Write(ctx, "x", []byte("v")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		all := true
		for _, srv := range cluster.Servers {
			if srv.Head("g", "x") == nil {
				all = false
				break
			}
		}
		if all {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("background gossip never delivered the write to all servers")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
