// Package core is the public face of the secure store: it assembles the n
// replica servers, the (simulated or real) network, the dissemination
// engines and the authorization service into a Cluster, and mints Clients
// bound to it. Examples, experiments and tests all build on this package;
// the protocol logic itself lives in internal/client and internal/server.
package core

import (
	"fmt"
	"path/filepath"
	"time"

	"securestore/internal/accessctl"
	"securestore/internal/client"
	"securestore/internal/cryptoutil"
	"securestore/internal/fragstore"
	"securestore/internal/gossip"
	"securestore/internal/metrics"
	"securestore/internal/quorum"
	"securestore/internal/server"
	"securestore/internal/sharding"
	"securestore/internal/simnet"
	"securestore/internal/storage"
	"securestore/internal/trace"
	"securestore/internal/transport"
	"securestore/internal/wire"
)

// ClusterConfig sizes and wires a secure-store deployment.
type ClusterConfig struct {
	// N is the number of replica servers per group; B the bound on faulty
	// ones, per group. Validity requires N >= 3B+1 (see quorum.Validate).
	N int
	B int
	// Groups is the number of independent replica groups the keyspace is
	// sharded across (default 1: the paper's single-group deployment, with
	// servers named s00..). With Groups > 1 the cluster builds G disjoint
	// server sets (named g00-s00.., each with its own gossip mesh, quorum
	// state and write-ahead logs), publishes a shard table signed by the
	// deterministic "shardadmin" key, and every client minted with
	// NewClient routes items to their owning group (see internal/sharding).
	Groups int
	// Seed derives deterministic keys and network randomness so whole
	// experiments are reproducible. Empty selects "seed".
	Seed string
	// NetProfile is the default link profile (simnet.Instant when zero).
	NetProfile simnet.Profile
	// GossipInterval and GossipFanout tune dissemination. Background
	// gossip only runs after StartGossip; experiments that want
	// deterministic dissemination call Converge instead.
	GossipInterval time.Duration
	GossipFanout   int
	// GossipMode selects push, pull or push-pull anti-entropy (default
	// push).
	GossipMode gossip.Mode
	// GossipTimeout bounds each gossip exchange (default 2s). Fault
	// harnesses lower it so a mute peer cannot stall a driven round for
	// the full default.
	GossipTimeout time.Duration
	// LogDepth bounds the multi-writer per-item write logs.
	LogDepth int
	// DisableAuth omits the authorization service (micro-benchmarks that
	// isolate protocol costs from token verification).
	DisableAuth bool
	// DisableVerifyCache turns off the keyring's verified-signature cache
	// (enabled by default; see cryptoutil.VerifyCache). Used by ablations
	// that measure what the cache saves.
	DisableVerifyCache bool
	// VerifyCacheSize bounds the verified-signature cache (default 4096).
	VerifyCacheSize int
	// DisableCausalGating turns off server-side causal gating (ablation
	// A1 only).
	DisableCausalGating bool
	// DataDir, when non-empty, backs every replica with a write-ahead log
	// at DataDir/<name>.log and recovers state on construction — the same
	// durability path cmd/securestored uses. The logs are closed by
	// Cluster.Close.
	DataDir string
	// Principals pre-registers these clients' (deterministic) public keys
	// before recovery runs. Recovery re-verifies every log record, so a
	// persistent cluster must know its writers' keys upfront — exactly as
	// a TCP deployment lists clients in its config. Clients minted later
	// with NewClient are added to the ring as usual.
	Principals []string
	// Tracer, when non-nil, records server-side spans (request handling
	// and gossip rounds) for every replica in the cluster. Client-side
	// tracing is configured per client via ClientSpec.Tracer.
	Tracer *trace.Tracer
}

// Cluster is a running secure-store deployment over the in-memory
// transport.
type Cluster struct {
	cfg  ClusterConfig
	Ring *cryptoutil.Keyring
	Net  *simnet.Network
	Bus  *transport.Bus
	// Servers, ServerNames and Engines are flat views over every group in
	// deployment order (group 0's servers first); fault-injection helpers
	// and tests index them directly. GroupServers holds the same servers
	// partitioned by replica group.
	Servers       []*server.Server
	ServerNames   []string
	Engines       []*gossip.Engine
	GroupServers  [][]*server.Server
	Authority     *accessctl.Authority
	ServerMetrics *metrics.Counters
	// Table is the signed shard table (nil for single-group clusters).
	Table *sharding.Table

	gossipRunning bool
	logs          []*storage.Log
}

// GroupSpec declares one related group of data items.
type GroupSpec struct {
	Name        string
	Consistency wire.Consistency
	MultiWriter bool
}

// ClientSpec mints one client session against a cluster group.
type ClientSpec struct {
	ID    string
	Group string
	// Rights defaults to ReadWrite.
	Rights accessctl.Rights
	// Metrics receives this client's cost accounting (may be nil).
	Metrics *metrics.Counters
	// Tracer records this client's operation spans (may be nil).
	Tracer *trace.Tracer
	// DataKey enables client-side encryption.
	DataKey *cryptoutil.DataKey
	// ObfuscateTimestamps randomizes timestamp increments.
	ObfuscateTimestamps bool
	// EagerRead selects the single-round read optimization (see
	// client.Config.EagerRead; ablation A4).
	EagerRead bool
	// CallTimeout / ReadRetries / RetryBackoff override client defaults.
	CallTimeout  time.Duration
	ReadRetries  int
	RetryBackoff time.Duration
	// ServerOrder, when set, is the client's contact preference (e.g. its
	// nearest replicas first). It must be a permutation of the cluster's
	// server names. Staged operations contact servers in this order, which
	// determines whose copies a read sees first.
	ServerOrder []string
}

// NewCluster builds and starts a cluster (gossip engines are created but
// not started; call StartGossip or drive Converge manually).
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if err := quorum.Validate(cfg.N, cfg.B); err != nil {
		return nil, err
	}
	if cfg.Seed == "" {
		cfg.Seed = "seed"
	}
	if cfg.GossipInterval <= 0 {
		cfg.GossipInterval = 50 * time.Millisecond
	}
	if cfg.GossipFanout <= 0 {
		cfg.GossipFanout = 2
	}

	c := &Cluster{
		cfg:           cfg,
		Ring:          cryptoutil.NewKeyring(),
		Net:           simnet.New(cfg.NetProfile, seedInt(cfg.Seed)),
		ServerMetrics: &metrics.Counters{},
	}
	if !cfg.DisableVerifyCache {
		size := cfg.VerifyCacheSize
		if size <= 0 {
			size = 4096
		}
		c.Ring.EnableVerifyCache(size)
	}
	c.Bus = transport.NewBus(c.Net)

	if !cfg.DisableAuth {
		authKey := cryptoutil.DeterministicKeyPair("authority", cfg.Seed)
		c.Authority = accessctl.NewAuthority(authKey)
		c.Ring.MustRegister(authKey.ID, authKey.Public)
	}

	// A multi-group cluster publishes its topology as a signed shard table:
	// clients verify the administrator's signature once at construction and
	// then route against authenticated topology (see internal/sharding).
	groups := cfg.Groups
	if groups <= 0 {
		groups = 1
	}
	if groups > 1 {
		table := &sharding.Table{Version: 1}
		for g := 0; g < groups; g++ {
			shard := sharding.Shard{Name: fmt.Sprintf("g%02d", g)}
			for i := 0; i < cfg.N; i++ {
				shard.Servers = append(shard.Servers, serverName(groups, g, i))
			}
			table.Shards = append(table.Shards, shard)
		}
		admin := cryptoutil.DeterministicKeyPair("shardadmin", cfg.Seed)
		c.Ring.MustRegister(admin.ID, admin.Public)
		table.Sign(admin, c.ServerMetrics)
		c.Table = table
	}

	for g := 0; g < groups; g++ {
		var groupServers []*server.Server
		for i := 0; i < cfg.N; i++ {
			name := serverName(groups, g, i)
			key := cryptoutil.DeterministicKeyPair(name, cfg.Seed)
			c.Ring.MustRegister(name, key.Public)
			authorityID := ""
			if c.Authority != nil {
				authorityID = c.Authority.ID()
			}
			var persist *storage.Log
			if cfg.DataDir != "" {
				log, err := storage.Open(filepath.Join(cfg.DataDir, name+".log"))
				if err != nil {
					c.Close()
					return nil, err
				}
				log.Metrics = c.ServerMetrics
				c.logs = append(c.logs, log)
				persist = log
			}
			shardName := ""
			var owns func(string) bool
			if c.Table != nil {
				shardName = c.Table.Shards[g].Name
				table, shard := c.Table, shardName
				owns = func(item string) bool { return table.Owns(shard, item) }
			}
			srv := server.New(server.Config{
				ID:                  name,
				Ring:                c.Ring,
				AuthorityID:         authorityID,
				LogDepth:            cfg.LogDepth,
				Metrics:             c.ServerMetrics,
				Tracer:              cfg.Tracer,
				DisableCausalGating: cfg.DisableCausalGating,
				Persist:             persist,
				Shard:               shardName,
				Owns:                owns,
			})
			c.Servers = append(c.Servers, srv)
			c.ServerNames = append(c.ServerNames, name)
			groupServers = append(groupServers, srv)
			c.Bus.Register(name, srv)
		}
		c.GroupServers = append(c.GroupServers, groupServers)
	}

	// Gossip meshes are per group: a replica only disseminates to its own
	// shard's peers (foreign-shard writes would be rejected as wrong-shard
	// anyway).
	for i, srv := range c.Servers {
		g := i / cfg.N
		peers := make([]string, 0, cfg.N-1)
		for j := 0; j < cfg.N; j++ {
			if peer := c.ServerNames[g*cfg.N+j]; peer != srv.ID() {
				peers = append(peers, peer)
			}
		}
		mode := cfg.GossipMode
		if mode == 0 {
			mode = gossip.Push
		}
		opts := []gossip.Option{
			gossip.WithInterval(cfg.GossipInterval),
			gossip.WithFanout(cfg.GossipFanout),
			gossip.WithSeed(seedInt(cfg.Seed) + int64(i)),
			gossip.WithMode(mode),
		}
		if cfg.GossipTimeout > 0 {
			opts = append(opts, gossip.WithTimeout(cfg.GossipTimeout))
		}
		if cfg.Tracer != nil {
			opts = append(opts, gossip.WithTracer(cfg.Tracer))
		}
		eng := gossip.New(srv, c.Bus.Caller(srv.ID(), c.ServerMetrics), peers, opts...)
		c.Engines = append(c.Engines, eng)
	}
	for _, id := range cfg.Principals {
		key := cryptoutil.DeterministicKeyPair(id, cfg.Seed)
		c.Ring.MustRegister(id, key.Public)
	}
	if cfg.DataDir != "" {
		for _, srv := range c.Servers {
			if err := srv.Recover(); err != nil {
				c.Close()
				return nil, fmt.Errorf("recover %s: %w", srv.ID(), err)
			}
		}
	}
	return c, nil
}

// N returns the cluster's per-group replica count.
func (c *Cluster) N() int { return c.cfg.N }

// B returns the cluster's per-group fault bound.
func (c *Cluster) B() int { return c.cfg.B }

// Groups returns the number of replica groups (1 for unsharded clusters).
func (c *Cluster) Groups() int {
	if c.cfg.Groups <= 0 {
		return 1
	}
	return c.cfg.Groups
}

// serverName names replica i of group g. Single-group clusters keep the
// historical flat names (s00..) so seeds, write-ahead logs and configs
// from before sharding stay valid.
func serverName(groups, g, i int) string {
	if groups <= 1 {
		return fmt.Sprintf("s%02d", i)
	}
	return fmt.Sprintf("g%02d-s%02d", g, i)
}

// RegisterGroup declares a related group on every server.
func (c *Cluster) RegisterGroup(spec GroupSpec) {
	pol := server.Policy{Consistency: spec.Consistency, MultiWriter: spec.MultiWriter}
	for _, srv := range c.Servers {
		srv.RegisterGroup(spec.Name, pol)
	}
}

// StartGossip launches background dissemination on every server.
func (c *Cluster) StartGossip() {
	if c.gossipRunning {
		return
	}
	c.gossipRunning = true
	for _, e := range c.Engines {
		e.Start()
	}
}

// Close stops background gossip and closes any persistence logs. Safe to
// call multiple times.
func (c *Cluster) Close() {
	for _, e := range c.Engines {
		e.Stop()
	}
	c.gossipRunning = false
	for _, l := range c.logs {
		_ = l.Close()
	}
	c.logs = nil
}

// Converge pushes updates between all servers until no new writes are
// applied, giving experiments a deterministic fully-disseminated state.
func (c *Cluster) Converge() int {
	return gossip.Converge(c.Engines, 10*c.cfg.N)
}

// InjectFaults switches the first count servers into the given fault mode
// and returns their names. Crash faults are also deregistered from the bus
// so calls fail fast like a refused connection.
func (c *Cluster) InjectFaults(mode server.FaultMode, count int) []string {
	var names []string
	for i := 0; i < count && i < len(c.Servers); i++ {
		c.Servers[i].SetFault(mode)
		names = append(names, c.Servers[i].ID())
	}
	return names
}

// CrashServer simulates a process crash of server i: the replica stops
// answering (Crash fault mode) but its write-ahead log, if any, survives.
// Pair with RestartServer to model a crash-recovery cycle.
func (c *Cluster) CrashServer(i int) {
	c.Servers[i].SetFault(server.Crash)
}

// RestartServer restarts a crashed server i: its volatile state is
// discarded and rebuilt from its write-ahead log (nothing, when the
// cluster runs without DataDir — a restart then loses all state and the
// replica must catch up entirely via gossip), and the replica resumes
// answering. The server's gossip epoch changes so peers resynchronize
// their high-water marks.
func (c *Cluster) RestartServer(i int) error {
	if err := c.Servers[i].Restart(); err != nil {
		return fmt.Errorf("restart %s: %w", c.Servers[i].ID(), err)
	}
	c.Servers[i].SetFault(server.Healthy)
	return nil
}

// HealAll returns every server to healthy behaviour.
func (c *Cluster) HealAll() {
	for _, srv := range c.Servers {
		srv.SetFault(server.Healthy)
	}
}

// GroupConsistencyOf looks up the consistency registered for a group on
// the first server (all servers share group specs registered through
// RegisterGroup).
func (c *Cluster) clientConfig(spec ClientSpec, consistency wire.Consistency, multiWriter bool) (client.Config, error) {
	if spec.ID == "" || spec.Group == "" {
		return client.Config{}, fmt.Errorf("core: client spec requires ID and Group")
	}
	key := cryptoutil.DeterministicKeyPair(spec.ID, c.cfg.Seed)
	if err := c.Ring.Register(spec.ID, key.Public); err != nil {
		return client.Config{}, err
	}
	rights := spec.Rights
	if rights == 0 {
		rights = accessctl.ReadWrite
	}
	var token *accessctl.Token
	if c.Authority != nil {
		token = c.Authority.Issue(spec.ID, spec.Group, rights, spec.Metrics)
	}
	var servers []string
	if c.Table == nil {
		servers = append([]string(nil), c.ServerNames...)
		if len(spec.ServerOrder) > 0 {
			if len(spec.ServerOrder) != len(c.ServerNames) {
				return client.Config{}, fmt.Errorf("core: ServerOrder has %d names, cluster has %d",
					len(spec.ServerOrder), len(c.ServerNames))
			}
			servers = append([]string(nil), spec.ServerOrder...)
		}
	} else if len(spec.ServerOrder) > 0 {
		// Contact order within a shard comes from the table; reordering a
		// flat list across groups has no meaning once items route per shard.
		return client.Config{}, fmt.Errorf("core: ServerOrder is not supported on sharded clusters")
	}
	return client.Config{
		ID:                  spec.ID,
		Key:                 key,
		Ring:                c.Ring,
		Servers:             servers,
		Table:               c.Table,
		B:                   c.cfg.B,
		Group:               spec.Group,
		Consistency:         consistency,
		MultiWriter:         multiWriter,
		Caller:              c.Bus.Caller(spec.ID, spec.Metrics),
		Token:               token,
		Metrics:             spec.Metrics,
		Tracer:              spec.Tracer,
		CallTimeout:         spec.CallTimeout,
		ReadRetries:         spec.ReadRetries,
		RetryBackoff:        spec.RetryBackoff,
		DataKey:             spec.DataKey,
		ObfuscateTimestamps: spec.ObfuscateTimestamps,
		EagerRead:           spec.EagerRead,
	}, nil
}

// NewClient mints a client for a group previously declared with
// RegisterGroup semantics. The caller supplies the group's consistency and
// sharing mode via the GroupSpec to keep client and servers in agreement.
func (c *Cluster) NewClient(spec ClientSpec, group GroupSpec) (*client.Client, error) {
	if spec.Group == "" {
		spec.Group = group.Name
	}
	if spec.Group != group.Name {
		return nil, fmt.Errorf("core: client group %q does not match spec %q", spec.Group, group.Name)
	}
	cfg, err := c.clientConfig(spec, group.Consistency, group.MultiWriter)
	if err != nil {
		return nil, err
	}
	return client.New(cfg)
}

// seedInt derives a deterministic int64 from the cluster seed string.
func seedInt(seed string) int64 {
	sum := cryptoutil.Digest([]byte(seed))
	var v int64
	for i := 0; i < 8; i++ {
		v = v<<8 | int64(sum[i])
	}
	if v < 0 {
		v = -v
	}
	return v
}

// NewFragStore mints a fragmentation–scattering client (internal/fragstore)
// over this cluster: values are dispersed into one IDA fragment per replica
// so that any k reconstruct and fewer reveal nothing — the complementary
// technique of the paper's Section 3 (refs [14,15,18]) without any
// encryption keys to manage. On a sharded cluster each item's fragments
// are routed to the servers of its owning group under the signed shard
// table. The group should be registered MRC, single-writer. k = 0 selects
// the default b+1.
func (c *Cluster) NewFragStore(spec ClientSpec, group GroupSpec, k int) (*fragstore.Store, error) {
	if spec.Group == "" {
		spec.Group = group.Name
	}
	key := cryptoutil.DeterministicKeyPair(spec.ID, c.cfg.Seed)
	if err := c.Ring.Register(spec.ID, key.Public); err != nil {
		return nil, err
	}
	rights := spec.Rights
	if rights == 0 {
		rights = accessctl.ReadWrite
	}
	var token *accessctl.Token
	if c.Authority != nil {
		token = c.Authority.Issue(spec.ID, spec.Group, rights, spec.Metrics)
	}
	return fragstore.New(fragstore.Config{
		ID:          spec.ID,
		Key:         key,
		Ring:        c.Ring,
		Servers:     append([]string(nil), c.ServerNames...),
		Table:       c.Table,
		B:           c.cfg.B,
		K:           k,
		Group:       spec.Group,
		Caller:      c.Bus.Caller(spec.ID, spec.Metrics),
		Token:       token,
		Metrics:     spec.Metrics,
		CallTimeout: spec.CallTimeout,
	})
}
