package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"securestore/internal/client"
	"securestore/internal/wire"
	"securestore/internal/workload"
)

// TestConcurrentMultiWriterClients runs several clients concurrently
// against one multi-writer group (each client is its own session; sessions
// are independent goroutines) and checks convergence: after dissemination,
// every item's head is identical on every server and carries a valid
// augmented timestamp.
func TestConcurrentMultiWriterClients(t *testing.T) {
	cluster := newTestCluster(t, 4, 1)
	group := GroupSpec{Name: "shared", Consistency: wire.CC, MultiWriter: true}
	cluster.RegisterGroup(group)
	ctx := context.Background()

	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		cl, err := cluster.NewClient(fastSpec(fmt.Sprintf("writer%d", i), "shared"), group)
		if err != nil {
			t.Fatal(err)
		}
		mustConnect(t, cl)
		wg.Add(1)
		go func(cl *client.Client, id int) {
			defer wg.Done()
			gen := workload.New(workload.Config{
				Seed: int64(id), Items: 4, ItemPrefix: "doc", ReadFraction: 0.4, ValueSize: 32,
			})
			for op := 0; op < 15; op++ {
				next := gen.Next()
				if next.IsRead {
					if _, _, err := cl.Read(ctx, next.Item); err != nil {
						continue // stale reads are allowed mid-churn
					}
				} else {
					if _, err := cl.Write(ctx, next.Item, next.Value); err != nil {
						errs <- fmt.Errorf("writer%d: %w", id, err)
						return
					}
				}
			}
		}(cl, i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	cluster.Converge()

	// All servers agree on every item's head, and heads verify.
	gen := workload.New(workload.Config{Items: 4, ItemPrefix: "doc"})
	for _, item := range gen.Items() {
		ref := cluster.Servers[0].Head("shared", item)
		for _, srv := range cluster.Servers[1:] {
			head := srv.Head("shared", item)
			switch {
			case ref == nil && head == nil:
				continue
			case ref == nil || head == nil:
				t.Fatalf("item %s: servers disagree on existence after convergence", item)
			case ref.Stamp != head.Stamp:
				t.Fatalf("item %s: heads diverge after convergence: %v vs %v", item, ref.Stamp, head.Stamp)
			}
		}
		if ref != nil {
			if ref.Stamp.Writer == "" {
				t.Fatalf("item %s: head lacks an augmented timestamp", item)
			}
			if err := ref.Verify(cluster.Ring, nil); err != nil {
				t.Fatalf("item %s: converged head fails verification: %v", item, err)
			}
		}
	}
}

// TestZipfWorkloadSoak drives a skewed single-writer workload with a
// reader mid-stream, checking MRC per item throughout.
func TestZipfWorkloadSoak(t *testing.T) {
	cluster := newTestCluster(t, 4, 1)
	group := GroupSpec{Name: "g", Consistency: wire.MRC}
	cluster.RegisterGroup(group)
	ctx := context.Background()

	writer, err := cluster.NewClient(fastSpec("writer", "g"), group)
	if err != nil {
		t.Fatal(err)
	}
	reader, err := cluster.NewClient(fastSpec("reader", "g"), group)
	if err != nil {
		t.Fatal(err)
	}
	mustConnect(t, writer)
	mustConnect(t, reader)

	gen := workload.New(workload.Config{
		Seed: 99, Items: 8, ItemPrefix: "it", ReadFraction: 0, ValueSize: 24, ZipfSkew: 1.3,
	})
	lastStamp := make(map[string]uint64)
	for op := 0; op < 80; op++ {
		w := gen.NextWrite()
		if _, err := writer.Write(ctx, w.Item, w.Value); err != nil {
			t.Fatalf("op %d write %s: %v", op, w.Item, err)
		}
		if op%5 == 0 {
			cluster.Converge()
		}
		if op%3 == 0 {
			r := gen.NextRead()
			_, stamp, err := reader.Read(ctx, r.Item)
			if err != nil {
				continue // item may not exist yet or be undisseminated
			}
			if stamp.Time < lastStamp[r.Item] {
				t.Fatalf("op %d: item %s went backwards: %d after %d",
					op, r.Item, stamp.Time, lastStamp[r.Item])
			}
			lastStamp[r.Item] = stamp.Time
		}
	}

	// Final agreement check across the hot items.
	cluster.Converge()
	for _, item := range gen.Items() {
		ref := cluster.Servers[0].Head("g", item)
		for _, srv := range cluster.Servers[1:] {
			head := srv.Head("g", item)
			if (ref == nil) != (head == nil) {
				t.Fatalf("item %s: existence disagreement after convergence", item)
			}
			if ref != nil && head != nil && ref.Stamp != head.Stamp {
				t.Fatalf("item %s: divergent heads after convergence", item)
			}
		}
	}
}
