package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"securestore/internal/cryptoutil"
	"securestore/internal/metrics"
	"securestore/internal/sessionctx"
	"securestore/internal/timestamp"
	"securestore/internal/wire"
)

// startTCP boots a server with opts and returns its address plus a cleanup.
func startTCP(t *testing.T, h Handler, opts ...ServerOption) string {
	t.Helper()
	srv := NewTCPServer(h, opts...)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return addr
}

func codecTestWrite(t *testing.T) (*wire.SignedWrite, *cryptoutil.Keyring) {
	t.Helper()
	key := cryptoutil.DeterministicKeyPair("writer", "codec")
	ring := cryptoutil.NewKeyring()
	ring.MustRegister(key.ID, key.Public)
	value := []byte("value over tcp")
	w := &wire.SignedWrite{
		Group: "g", Item: "x",
		Stamp:     timestamp.Stamp{Time: 7, Writer: key.ID, Digest: cryptoutil.Digest(value)},
		Value:     value,
		WriterCtx: sessionctx.Vector{"x": {Time: 7, Writer: key.ID, Digest: cryptoutil.Digest(value)}},
	}
	w.Sign(key, nil)
	return w, ring
}

// verifyHandler verifies every pushed write it receives, proving the
// signature survives the binary wire format end to end.
type verifyHandler struct {
	ring *cryptoutil.Keyring
}

func (h *verifyHandler) ServeRequest(_ context.Context, _ string, req wire.Request) (wire.Response, error) {
	switch r := req.(type) {
	case wire.WriteReq:
		if err := r.Write.Verify(h.ring, nil); err != nil {
			return nil, err
		}
		return wire.Ack{}, nil
	default:
		return wire.Ack{}, nil
	}
}

func TestTCPBinarySignedWriteVerifies(t *testing.T) {
	w, ring := codecTestWrite(t)
	addr := startTCP(t, &verifyHandler{ring: ring})
	caller := NewTCPCaller("c", map[string]string{"srv": addr}, &metrics.Counters{})
	defer caller.Close()

	resp, err := caller.Call(context.Background(), "srv", wire.WriteReq{Write: w})
	if err != nil {
		t.Fatalf("signed write over binary codec: %v", err)
	}
	if _, ok := resp.(wire.Ack); !ok {
		t.Fatalf("resp = %T, want Ack", resp)
	}
}

// TestTCPGobCodecStillWorks exercises the WithGobCodec escape hatch on
// both ends: the pre-codec wire protocol must keep working as the
// benchmark baseline.
func TestTCPGobCodecStillWorks(t *testing.T) {
	wire.RegisterGob()
	w, ring := codecTestWrite(t)
	addr := startTCP(t, &verifyHandler{ring: ring}, WithGobCodec())
	caller := NewTCPCaller("c", map[string]string{"srv": addr}, &metrics.Counters{}, WithGobCodec())
	defer caller.Close()

	if _, err := caller.Call(context.Background(), "srv", wire.WriteReq{Write: w}); err != nil {
		t.Fatalf("signed write over gob codec: %v", err)
	}
}

// TestTCPCodecMismatchRefusedAtConnect pairs a binary caller with a gob
// server and vice versa: both must fail the first call with a loud error
// instead of mis-decoding.
func TestTCPCodecMismatchRefusedAtConnect(t *testing.T) {
	wire.RegisterGob()
	h := &echoHandler{}

	t.Run("binary caller, gob server", func(t *testing.T) {
		addr := startTCP(t, h, WithGobCodec())
		caller := NewTCPCaller("c", map[string]string{"srv": addr}, &metrics.Counters{})
		defer caller.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if _, err := caller.Call(ctx, "srv", wire.MetaReq{}); err == nil {
			t.Fatal("binary caller got a reply from a gob server")
		}
	})

	t.Run("gob caller, binary server", func(t *testing.T) {
		addr := startTCP(t, h)
		caller := NewTCPCaller("c", map[string]string{"srv": addr}, &metrics.Counters{}, WithGobCodec())
		defer caller.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if _, err := caller.Call(ctx, "srv", wire.MetaReq{}); err == nil {
			t.Fatal("gob caller got a reply from a binary server")
		}
	})
}

// TestTCPVersionMismatchRefused handshakes with a wrong frame version and
// expects the server to refuse the connection (close without serving).
func TestTCPVersionMismatchRefused(t *testing.T) {
	addr := startTCP(t, &echoHandler{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Read the server's preamble — it must announce the real version.
	var hs [handshakeLen]byte
	if _, err := io.ReadFull(conn, hs[:]); err != nil {
		t.Fatalf("read server handshake: %v", err)
	}
	if err := checkHandshake(hs); err != nil {
		t.Fatalf("server handshake invalid: %v", err)
	}

	// Offer a future frame version; the server must close on us.
	bad := handshakeBytes()
	bad[4] = wire.FrameVersion + 1
	if _, err := conn.Write(bad[:]); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("read after bad version = %v, want EOF (refused)", err)
	}
}

// TestTCPVersionMismatchCallerError dials a fake server announcing a
// future frame version; the caller must surface a version error, not hang
// or mis-decode.
func TestTCPVersionMismatchCallerError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		hs := handshakeBytes()
		hs[4] = wire.FrameVersion + 1
		conn.Write(hs[:])
		// Leave the conn open: the caller must fail from the handshake
		// alone, not from EOF.
		time.Sleep(2 * time.Second)
		conn.Close()
	}()

	caller := NewTCPCaller("c", map[string]string{"srv": ln.Addr().String()}, &metrics.Counters{})
	defer caller.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err = caller.Call(ctx, "srv", wire.MetaReq{})
	if err == nil {
		t.Fatal("call to version-mismatched server succeeded")
	}
	if !strings.Contains(err.Error(), "frame version") {
		t.Fatalf("error %q does not name the frame version", err)
	}
}

// TestTCPMalformedFramesRejected throws corrupt frames at a server; it
// must drop the connection (an error, never a panic) and keep serving
// healthy clients.
func TestTCPMalformedFramesRejected(t *testing.T) {
	addr := startTCP(t, &echoHandler{})

	send := func(t *testing.T, frame []byte) {
		t.Helper()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		var hs [handshakeLen]byte
		if _, err := io.ReadFull(br, hs[:]); err != nil {
			t.Fatal(err)
		}
		good := handshakeBytes()
		if _, err := conn.Write(good[:]); err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(frame); err != nil {
			return // server may already have hung up; that's a rejection too
		}
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := br.Read(make([]byte, 1)); err != io.EOF {
			t.Fatalf("read after malformed frame = %v, want EOF", err)
		}
	}

	t.Run("bad frame version byte", func(t *testing.T) {
		send(t, []byte{wire.FrameVersion + 9, 1, 0})
	})
	t.Run("oversized length prefix", func(t *testing.T) {
		frame := []byte{wire.FrameVersion}
		frame = binary.AppendUvarint(frame, uint64(maxFramePayload)+1)
		send(t, frame)
	})
	t.Run("garbage payload", func(t *testing.T) {
		frame := []byte{wire.FrameVersion}
		frame = binary.AppendUvarint(frame, 4)
		send(t, append(frame, 0xde, 0xad, 0xbe, 0xef))
	})
	t.Run("truncated envelope", func(t *testing.T) {
		frame := []byte{wire.FrameVersion}
		frame = binary.AppendUvarint(frame, 2)
		send(t, append(frame, 1, 0)) // ID then half an envelope
	})

	// The server must still serve a healthy client afterwards.
	caller := NewTCPCaller("c", map[string]string{"srv": addr}, &metrics.Counters{})
	defer caller.Close()
	if _, err := caller.Call(context.Background(), "srv", wire.MetaReq{}); err != nil {
		t.Fatalf("healthy call after malformed peers: %v", err)
	}
}

// TestTCPByteCounters checks the per-op tx/rx byte accounting on both
// sides of a call.
func TestTCPByteCounters(t *testing.T) {
	srvM := &metrics.Counters{}
	addr := startTCP(t, &echoHandler{}, WithServerCounters(srvM))
	m := &metrics.Counters{}
	caller := NewTCPCaller("c", map[string]string{"srv": addr}, m)
	defer caller.Close()

	const calls = 3
	for i := 0; i < calls; i++ {
		if _, err := caller.Call(context.Background(), "srv", wire.MetaReq{Item: "x"}); err != nil {
			t.Fatal(err)
		}
	}

	cs := m.Snapshot()
	if cs.TxBytes["meta"] <= 0 || cs.RxBytes["meta"] <= 0 {
		t.Fatalf("caller byte counters not recorded: %+v / %+v", cs.TxBytes, cs.RxBytes)
	}
	ss := srvM.Snapshot()
	if ss.RxBytes["meta"] != cs.TxBytes["meta"] {
		t.Fatalf("server rx %d != caller tx %d", ss.RxBytes["meta"], cs.TxBytes["meta"])
	}
	if ss.TxBytes["meta"] != cs.RxBytes["meta"] {
		t.Fatalf("server tx %d != caller rx %d", ss.TxBytes["meta"], cs.RxBytes["meta"])
	}
	if cs.BytesSent != cs.TxBytes["meta"]+cs.RxBytes["meta"] {
		t.Fatalf("BytesSent %d != tx+rx %d", cs.BytesSent, cs.TxBytes["meta"]+cs.RxBytes["meta"])
	}
}
