// Package transport moves wire messages between principals. Two
// implementations are provided: an in-memory transport routed through a
// simulated network (internal/simnet) for tests, experiments and examples,
// and a TCP transport (tcp.go) for running real server processes.
//
// Both implementations expose the same Caller interface, so every protocol
// above this package is transport-agnostic.
package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"securestore/internal/metrics"
	"securestore/internal/simnet"
	"securestore/internal/wire"
)

// Errors returned by transports.
var (
	// ErrNoReply is returned by a handler that deliberately does not answer
	// (a mute/crashed server). The transport converts it into a blocked call
	// that fails only when the caller's context expires, faithfully
	// modelling a server that silently drops requests.
	ErrNoReply = errors.New("transport: no reply")
	// ErrUnknownServer reports a call to an unregistered destination.
	ErrUnknownServer = errors.New("transport: unknown server")
)

// Handler is implemented by servers: it processes one request from the
// named principal and produces a response or an error.
type Handler interface {
	ServeRequest(ctx context.Context, from string, req wire.Request) (wire.Response, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctx context.Context, from string, req wire.Request) (wire.Response, error)

// ServeRequest calls f.
func (f HandlerFunc) ServeRequest(ctx context.Context, from string, req wire.Request) (wire.Response, error) {
	return f(ctx, from, req)
}

// Caller issues requests to servers on behalf of one origin principal.
type Caller interface {
	// Call sends req to the named server and waits for its response. An
	// application-level failure from the server is returned as err with a
	// nil response.
	Call(ctx context.Context, to string, req wire.Request) (wire.Response, error)
	// Origin returns the principal this caller sends as.
	Origin() string
}

// Bus is an in-memory message bus connecting handlers through a simulated
// network. It is safe for concurrent use.
type Bus struct {
	mu       sync.RWMutex
	net      *simnet.Network
	handlers map[string]Handler
}

// NewBus creates a bus over the given simulated network. A nil network
// delivers every message instantly and reliably.
func NewBus(net *simnet.Network) *Bus {
	return &Bus{net: net, handlers: make(map[string]Handler)}
}

// Register installs the handler for a server name, replacing any previous
// registration (used when restarting a server in fault experiments).
func (b *Bus) Register(name string, h Handler) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.handlers[name] = h
}

// Deregister removes a server from the bus (a crashed server).
func (b *Bus) Deregister(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.handlers, name)
}

// Network returns the underlying simulated network (nil when instant).
func (b *Bus) Network() *simnet.Network { return b.net }

// handler looks up a destination.
func (b *Bus) handler(name string) (Handler, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	h, ok := b.handlers[name]
	return h, ok
}

// Caller returns a Caller bound to the given origin principal. Message
// counts are recorded on m (one per request sent plus one per response
// received), which is how experiments account per-operation message costs.
func (b *Bus) Caller(origin string, m *metrics.Counters) Caller {
	return &busCaller{bus: b, origin: origin, metrics: m}
}

type busCaller struct {
	bus     *Bus
	origin  string
	metrics *metrics.Counters
}

var _ Caller = (*busCaller)(nil)

func (c *busCaller) Origin() string { return c.origin }

func (c *busCaller) Call(ctx context.Context, to string, req wire.Request) (wire.Response, error) {
	h, ok := c.bus.handler(to)
	if !ok {
		// An unregistered server behaves like a crashed one: the request is
		// counted (it was sent into the network) but never answered.
		c.metrics.AddMessage(0)
		return nil, fmt.Errorf("%w: %q", ErrUnknownServer, to)
	}

	// Outbound leg.
	c.metrics.AddMessage(0)
	if err := c.sleepLeg(ctx, c.origin, to); err != nil {
		return nil, err
	}

	resp, err := h.ServeRequest(ctx, c.origin, req)
	if err != nil {
		if errors.Is(err, ErrNoReply) {
			// A mute server: the caller blocks until its deadline.
			<-ctx.Done()
			return nil, fmt.Errorf("call %s: %w", to, ctx.Err())
		}
		return nil, fmt.Errorf("call %s: %w", to, err)
	}

	// Return leg.
	c.metrics.AddMessage(0)
	if err := c.sleepLeg(ctx, to, c.origin); err != nil {
		return nil, err
	}
	return resp, nil
}

// sleepLeg applies the simulated one-way delay (or loss) for one message
// leg. Lost messages surface as a blocked call that fails at the deadline,
// as real datagram loss with no retransmit would; partitions fail fast,
// like "no route to host".
func (c *busCaller) sleepLeg(ctx context.Context, from, to string) error {
	if c.bus.net == nil {
		return nil
	}
	d, err := c.bus.net.Delay(from, to)
	if errors.Is(err, simnet.ErrPartitioned) {
		return fmt.Errorf("leg %s->%s: %w", from, to, err)
	}
	if err != nil {
		<-ctx.Done()
		return fmt.Errorf("leg %s->%s: %w (%v)", from, to, ctx.Err(), err)
	}
	if d <= 0 {
		return nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
