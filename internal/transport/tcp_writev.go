package transport

// tcp_writev.go is the server's coalescing reply writer (DESIGN.md
// §7.11). It extends the frameWriter's waiter-delegated flush across
// connections: every reply frame is encoded into a pooled buffer and
// queued on its connection, and the last concurrent writer out — counted
// server-wide, not per connection — drains every dirty connection, each
// with one vectored write (net.Buffers, writev on TCP). Under concurrent
// load this turns one write syscall per response into one writev per
// connection per drain round, with frames from different handler
// goroutines riding the same syscall.
//
// Isolation: a connection whose peer stops reading blocks only its own
// writev. The drainer handles its own connection inline and hands every
// other dirty connection to a fresh goroutine, so one slow client never
// delays another client's responses. A connection being actively written
// (writing flag) is skipped by other drainers; the active writer
// re-checks the queue after each writev, so frames enqueued meanwhile
// are never stranded.
//
// Ordering: per connection the queue is FIFO and drained in order, so
// replies written by one connection's handlers leave in enqueue order —
// coalescing never reorders frames within a connection.

import (
	"encoding/binary"
	"net"
	"runtime"
	"sync"
	"sync/atomic"

	"securestore/internal/metrics"
	"securestore/internal/wire"
)

// replySender is the server-side reply write path: the coalescing writev
// writer for the binary codec, the per-connection frameWriter for gob.
type replySender interface {
	sendReply(rep *replyEnvelope) (int, error)
}

// serverWriter coordinates reply coalescing across all of one
// TCPServer's connections.
type serverWriter struct {
	metrics *metrics.Counters
	waiters atomic.Int64 // writers between enqueue and drain decision

	mu    sync.Mutex
	dirty []*connWriter // connections with queued frames awaiting a drain
}

func newServerWriter(m *metrics.Counters) *serverWriter {
	return &serverWriter{metrics: m}
}

// newConn returns the coalescing writer for one accepted connection.
func (sw *serverWriter) newConn(conn net.Conn) *connWriter {
	cw := &connWriter{conn: conn, sw: sw}
	cw.cond = sync.NewCond(&cw.mu)
	return cw
}

// markDirty queues cw for the next drain round (idempotent).
func (sw *serverWriter) markDirty(cw *connWriter) {
	sw.mu.Lock()
	if !cw.dirty {
		cw.dirty = true
		sw.dirty = append(sw.dirty, cw)
	}
	sw.mu.Unlock()
}

// drainFor drains every dirty connection: the caller's own inline, every
// other in its own goroutine so a blocked peer stalls nobody else.
func (sw *serverWriter) drainFor(own *connWriter) {
	sw.mu.Lock()
	conns := sw.dirty
	sw.dirty = nil
	for _, cw := range conns {
		cw.dirty = false
	}
	sw.mu.Unlock()
	for _, cw := range conns {
		if cw != own {
			go cw.drain(sw.metrics)
		}
	}
	own.drain(sw.metrics)
}

// connWriter queues encoded reply frames for one connection and writes
// them out in vectored batches. dirty is owned by serverWriter.mu; every
// other mutable field by mu.
type connWriter struct {
	conn net.Conn
	sw   *serverWriter

	mu      sync.Mutex
	cond    *sync.Cond     // signals written/err progress
	queue   net.Buffers    // encoded frames awaiting writev, FIFO
	owners  []*wire.Buffer // pooled buffers backing queue entries
	enq     int64          // frames ever enqueued
	written int64          // frames confirmed written, in order
	err     error          // first write failure; poisons the connection
	writing bool           // a drainer is inside writev for this connection
	dirty   bool           // queued on sw.dirty (owned by sw.mu)
}

// enqueue appends one encoded frame, transferring buf's ownership to the
// writer, and returns the frame's sequence number for await.
func (cw *connWriter) enqueue(buf *wire.Buffer, frame []byte) (int64, error) {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if cw.err != nil {
		return 0, cw.err
	}
	cw.queue = append(cw.queue, frame)
	cw.owners = append(cw.owners, buf)
	cw.enq++
	return cw.enq, nil
}

// await blocks until frame seq has been written or the writer failed.
func (cw *connWriter) await(seq int64) error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	for cw.written < seq && cw.err == nil {
		cw.cond.Wait()
	}
	if cw.written >= seq {
		return nil
	}
	return cw.err
}

// drain writes the queued frames with vectored writes until the queue is
// empty, another drainer owns the connection, or a write fails. On
// failure the connection is poisoned: queued and future frames fail fast
// and every waiter is woken with the error.
func (cw *connWriter) drain(m *metrics.Counters) {
	cw.mu.Lock()
	for !cw.writing && cw.err == nil && len(cw.queue) > 0 {
		bufs := cw.queue
		owners := cw.owners
		cw.queue = nil
		cw.owners = nil
		cw.writing = true
		cw.mu.Unlock()

		frames := len(owners)
		_, werr := bufs.WriteTo(cw.conn)
		m.AddWritevCall(frames)
		for _, b := range owners {
			b.Release()
		}

		cw.mu.Lock()
		cw.writing = false
		if werr != nil {
			cw.err = werr
			for _, b := range cw.owners {
				b.Release()
			}
			cw.queue, cw.owners = nil, nil
			break
		}
		cw.written += int64(frames)
		cw.cond.Broadcast()
	}
	cw.cond.Broadcast()
	cw.mu.Unlock()
}

// frameHdrMax is the largest possible frame header: version byte plus
// uvarint payload length.
const frameHdrMax = 1 + binary.MaxVarintLen64

// encodeReplyFrame encodes rep as one complete, self-contained wire
// frame (version byte, length prefix, payload) inside a pooled buffer.
// frame aliases buf.B; the caller owns buf until it hands it to enqueue.
// On error nothing is retained (ErrUnknownType stays recoverable).
func encodeReplyFrame(rep *replyEnvelope) (buf *wire.Buffer, frame []byte, err error) {
	buf = wire.NewBuffer()
	// Reserve worst-case header space, encode the payload after it, then
	// right-align the real header so the frame is one contiguous slice.
	b := buf.B[:frameHdrMax]
	b, err = appendReply(b, rep)
	buf.B = b
	if err != nil {
		buf.Release()
		return nil, nil, err
	}
	payload := len(b) - frameHdrMax
	var hdr [frameHdrMax]byte
	hdr[0] = wire.FrameVersion
	n := binary.PutUvarint(hdr[1:], uint64(payload))
	start := frameHdrMax - (1 + n)
	copy(b[start:], hdr[:1+n])
	return buf, b[start:], nil
}

// sendReply implements replySender: encode, enqueue, and apply the
// server-wide group-drain rule — the last concurrent writer out drains
// every dirty connection; everyone else delegates and awaits.
func (cw *connWriter) sendReply(rep *replyEnvelope) (int, error) {
	buf, frame, err := encodeReplyFrame(rep)
	if err != nil {
		return 0, err
	}
	n := len(frame)
	seq, err := cw.enqueue(buf, frame)
	if err != nil {
		buf.Release()
		return 0, err
	}
	sw := cw.sw
	sw.waiters.Add(1)
	sw.markDirty(cw)
	// Yield once before the drain decision so replies from peers that are
	// already runnable join this drain round — on a single-CPU host they
	// cannot enqueue while this goroutine holds the processor, and on an
	// idle server the yield is a no-op. Senders that find waiters > 0
	// afterwards delegate the whole drain to the last one out.
	runtime.Gosched()
	if sw.waiters.Add(-1) == 0 {
		sw.drainFor(cw)
	}
	return n, cw.await(seq)
}
