package transport

// tcp_writev_test.go covers the coalescing reply writer (tcp_writev.go):
// frame integrity and FIFO order through vectored writes, write-error
// poisoning, cross-connection isolation (a blocked peer stalls only its
// own connection), and an end-to-end stress over real TCP connections
// with the writev metrics checked.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"securestore/internal/metrics"
	"securestore/internal/wire"
)

// stubConn is a net.Conn that collects written bytes. gate, when
// non-nil, blocks each Write until the channel yields; failAfter >= 0
// makes the (failAfter+1)-th Write return an error.
type stubConn struct {
	mu        sync.Mutex
	buf       []byte
	writes    int
	gate      chan struct{}
	failAfter int
}

func newStubConn() *stubConn { return &stubConn{failAfter: -1} }

func (c *stubConn) Write(p []byte) (int, error) {
	if c.gate != nil {
		<-c.gate
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failAfter >= 0 && c.writes >= c.failAfter {
		return 0, errors.New("stub: write refused")
	}
	c.writes++
	c.buf = append(c.buf, p...)
	return len(p), nil
}

func (c *stubConn) bytes() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.buf...)
}

func (c *stubConn) Read([]byte) (int, error)           { return 0, errors.New("stub: no reads") }
func (c *stubConn) Close() error                       { return nil }
func (c *stubConn) LocalAddr() net.Addr                { return nil }
func (c *stubConn) RemoteAddr() net.Addr               { return nil }
func (c *stubConn) SetDeadline(time.Time) error        { return nil }
func (c *stubConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *stubConn) SetWriteDeadline(t time.Time) error { return nil }

// decodeReplyIDs walks the raw byte stream a connWriter produced and
// returns the reply IDs frame by frame, failing on any framing damage.
func decodeReplyIDs(t *testing.T, raw []byte) []uint64 {
	t.Helper()
	var ids []uint64
	for len(raw) > 0 {
		if raw[0] != wire.FrameVersion {
			t.Fatalf("frame %d: version byte %d", len(ids), raw[0])
		}
		n, used := binary.Uvarint(raw[1:])
		if used <= 0 || int(n) > len(raw)-1-used {
			t.Fatalf("frame %d: bad length prefix", len(ids))
		}
		payload := raw[1+used : 1+used+int(n)]
		id, idLen := binary.Uvarint(payload)
		if idLen <= 0 {
			t.Fatalf("frame %d: bad reply ID", len(ids))
		}
		ids = append(ids, id)
		raw = raw[1+used+int(n):]
	}
	return ids
}

// TestWritevFrameIntegrityAndOrder: many concurrent sendReply calls on
// one connection must leave a byte stream that parses back into exactly
// the frames sent, each connection's frames in FIFO enqueue order
// (monotonically increasing IDs here, since each sender enqueues its
// next frame only after the previous await returned).
func TestWritevFrameIntegrityAndOrder(t *testing.T) {
	m := &metrics.Counters{}
	sw := newServerWriter(m)
	conn := newStubConn()
	cw := sw.newConn(conn)

	const frames = 200
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < frames/4; i++ {
				id := uint64(g*1000 + i)
				if _, err := cw.sendReply(&replyEnvelope{ID: id, Resp: wire.Ack{}}); err != nil {
					errs[g] = fmt.Errorf("frame %d: %w", id, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	ids := decodeReplyIDs(t, conn.bytes())
	if len(ids) != frames {
		t.Fatalf("decoded %d frames, want %d", len(ids), frames)
	}
	last := make(map[uint64]uint64) // per-sender high-water mark
	seen := make(map[uint64]bool)
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("reply %d duplicated on the wire", id)
		}
		seen[id] = true
		g := id / 1000
		if prev, ok := last[g]; ok && id <= prev {
			t.Fatalf("sender %d: reply %d written after %d — FIFO order broken", g, id, prev)
		}
		last[g] = id
	}
	if m.WritevFrames() != frames {
		t.Fatalf("writev frames = %d, want %d", m.WritevFrames(), frames)
	}
	if calls := m.WritevCalls(); calls == 0 || calls > frames {
		t.Fatalf("writev calls = %d out of range [1, %d]", calls, frames)
	}
	t.Logf("writev calls: %d for %d frames (%.1f frames/call)",
		m.WritevCalls(), frames, float64(frames)/float64(m.WritevCalls()))
}

// TestWritevBlockedConnIsolation: with connection A's peer not reading
// (its Write blocked), replies on connection B must still complete —
// the cross-connection drain hands every other connection to its own
// goroutine and the blocked writev holds only its own writer.
func TestWritevBlockedConnIsolation(t *testing.T) {
	sw := newServerWriter(&metrics.Counters{})
	blocked := newStubConn()
	blocked.gate = make(chan struct{})
	a := sw.newConn(blocked)
	b := sw.newConn(newStubConn())

	aDone := make(chan error, 1)
	go func() {
		_, err := a.sendReply(&replyEnvelope{ID: 1, Resp: wire.Ack{}})
		aDone <- err
	}()
	// Wait until A's drainer is inside the blocked writev.
	deadline := time.After(2 * time.Second)
	for {
		a.mu.Lock()
		writing := a.writing
		a.mu.Unlock()
		if writing {
			break
		}
		select {
		case <-deadline:
			t.Fatal("connection A never reached its writev")
		default:
			time.Sleep(time.Millisecond)
		}
	}

	bDone := make(chan error, 1)
	go func() {
		_, err := b.sendReply(&replyEnvelope{ID: 2, Resp: wire.Ack{}})
		bDone <- err
	}()
	select {
	case err := <-bDone:
		if err != nil {
			t.Fatalf("connection B reply failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("connection B's reply stalled behind A's blocked peer")
	}

	select {
	case err := <-aDone:
		t.Fatalf("connection A completed while blocked: %v", err)
	default:
	}
	blocked.gate <- struct{}{} // release A
	if err := <-aDone; err != nil {
		t.Fatalf("connection A reply after unblock: %v", err)
	}
}

// TestWritevErrorPoisonsConnection: a write failure must fail the frames
// caught in that writev and every later sendReply, without hanging any
// waiter.
func TestWritevErrorPoisonsConnection(t *testing.T) {
	sw := newServerWriter(&metrics.Counters{})
	conn := newStubConn()
	conn.failAfter = 0 // every write fails
	cw := sw.newConn(conn)

	var wg sync.WaitGroup
	fails := make([]error, 8)
	for i := range fails {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, fails[i] = cw.sendReply(&replyEnvelope{ID: uint64(i), Resp: wire.Ack{}})
		}(i)
	}
	wg.Wait()
	for i, err := range fails {
		if err == nil {
			t.Fatalf("reply %d reported success on a dead connection", i)
		}
	}
	if _, err := cw.sendReply(&replyEnvelope{ID: 99, Resp: wire.Ack{}}); err == nil {
		t.Fatal("poisoned connection accepted a new reply")
	}
}

// TestTCPWritevEndToEnd: concurrent pipelined calls over several real
// TCP connections; every reply must arrive intact and every reply byte
// must leave through the vectored write path (writev frame accounting
// equals replies sent).
func TestTCPWritevEndToEnd(t *testing.T) {
	m := &metrics.Counters{}
	srv := NewTCPServer(&echoHandler{}, WithServerCounters(m))
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	const conns = 4
	const callsPerConn = 8
	const reqsPerCall = 10
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			caller := NewTCPCaller(fmt.Sprintf("client-%d", c), map[string]string{"srv": addr}, &metrics.Counters{})
			defer caller.Close()
			var inner sync.WaitGroup
			for g := 0; g < callsPerConn; g++ {
				inner.Add(1)
				go func() {
					defer inner.Done()
					for i := 0; i < reqsPerCall; i++ {
						if _, err := caller.Call(context.Background(), "srv", wire.MetaReq{Item: "x"}); err != nil {
							t.Errorf("call: %v", err)
							return
						}
					}
				}()
			}
			inner.Wait()
		}(c)
	}
	wg.Wait()

	const total = conns * callsPerConn * reqsPerCall
	if m.WritevFrames() != total {
		t.Fatalf("writev frames = %d, want %d (every reply must use the vectored path)", m.WritevFrames(), total)
	}
	if m.WritevCalls() == 0 || m.WritevCalls() > m.WritevFrames() {
		t.Fatalf("writev calls = %d, frames = %d", m.WritevCalls(), m.WritevFrames())
	}
	t.Logf("end-to-end: %d frames in %d writev calls (%.1f frames/call)",
		m.WritevFrames(), m.WritevCalls(), float64(m.WritevFrames())/float64(m.WritevCalls()))
}
