package transport

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"securestore/internal/metrics"
	"securestore/internal/timestamp"
	"securestore/internal/wire"
)

// muxHandler answers MetaReq with a stamp echoing the numeric item name,
// optionally delaying or muting specific items to force interleaving.
type muxHandler struct {
	mu    sync.Mutex
	delay map[string]time.Duration // item -> handling delay
	mute  map[string]bool          // item -> never answer
}

func (h *muxHandler) ServeRequest(_ context.Context, _ string, req wire.Request) (wire.Response, error) {
	r, ok := req.(wire.MetaReq)
	if !ok {
		return wire.Ack{}, nil
	}
	h.mu.Lock()
	d := h.delay[r.Item]
	muted := h.mute[r.Item]
	h.mu.Unlock()
	if muted {
		return nil, ErrNoReply
	}
	if d > 0 {
		time.Sleep(d)
	}
	n, _ := strconv.Atoi(r.Item)
	return wire.MetaResp{Has: true, Stamp: timestamp.Stamp{Time: uint64(n)}}, nil
}

func newMuxServer(t *testing.T, h Handler) (string, *TCPServer) {
	t.Helper()
	wire.RegisterGob()
	srv := NewTCPServer(h)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return addr, srv
}

// TestTCPCancelledCallReleasesPromptly is the regression test for the
// serialized transport's worst failure mode: a call whose context is
// cancelled must return immediately — not when the server eventually
// answers — and the connection must remain usable for subsequent and
// concurrent calls.
func TestTCPCancelledCallReleasesPromptly(t *testing.T) {
	h := &muxHandler{delay: map[string]time.Duration{"7": 2 * time.Second}}
	addr, _ := newMuxServer(t, h)

	caller := NewTCPCaller("alice", map[string]string{"srv": addr}, &metrics.Counters{})
	t.Cleanup(caller.Close)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := caller.Call(ctx, "srv", wire.MetaReq{Item: "7"})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("cancelled call took %v, want prompt release", elapsed)
	}

	// The connection must still work: the slow handler is still running
	// server-side, but a fresh call on the same connection completes.
	resp, err := caller.Call(context.Background(), "srv", wire.MetaReq{Item: "42"})
	if err != nil {
		t.Fatalf("call after cancellation: %v", err)
	}
	if mr := resp.(wire.MetaResp); mr.Stamp.Time != 42 {
		t.Fatalf("resp stamp = %d, want 42", mr.Stamp.Time)
	}
}

// TestTCPMutedFrameDoesNotBlockPipeline: one unanswered request (a mute
// server swallowing a frame) must not stall other in-flight calls on the
// same connection.
func TestTCPMutedFrameDoesNotBlockPipeline(t *testing.T) {
	h := &muxHandler{mute: map[string]bool{"0": true}}
	addr, _ := newMuxServer(t, h)
	caller := NewTCPCaller("alice", map[string]string{"srv": addr}, &metrics.Counters{})
	t.Cleanup(caller.Close)

	muteCtx, cancelMute := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancelMute()
	done := make(chan error, 1)
	go func() {
		_, err := caller.Call(muteCtx, "srv", wire.MetaReq{Item: "0"})
		done <- err
	}()

	// While the muted call is pending, other calls must flow freely.
	for i := 1; i <= 10; i++ {
		resp, err := caller.Call(context.Background(), "srv", wire.MetaReq{Item: strconv.Itoa(i)})
		if err != nil {
			t.Fatalf("call %d during mute: %v", i, err)
		}
		if mr := resp.(wire.MetaResp); mr.Stamp.Time != uint64(i) {
			t.Fatalf("call %d: stamp %d", i, mr.Stamp.Time)
		}
	}
	if err := <-done; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("muted call err = %v, want deadline exceeded", err)
	}
}

// TestTCPConcurrentDemux hammers one connection from many goroutines with
// randomized handler delays so replies come back out of order, and checks
// every reply is routed to the call that sent the matching request.
func TestTCPConcurrentDemux(t *testing.T) {
	h := &muxHandler{delay: map[string]time.Duration{}}
	for i := 0; i < 64; i++ {
		// Earlier requests get longer delays: guarantees out-of-order replies.
		h.delay[strconv.Itoa(i)] = time.Duration(64-i) * time.Millisecond / 8
	}
	addr, _ := newMuxServer(t, h)
	caller := NewTCPCaller("alice", map[string]string{"srv": addr}, &metrics.Counters{})
	t.Cleanup(caller.Close)

	var wg sync.WaitGroup
	var mismatches atomic.Int64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < 16; j++ {
				item := (g*16 + j) % 64
				resp, err := caller.Call(context.Background(), "srv", wire.MetaReq{Item: strconv.Itoa(item)})
				if err != nil {
					t.Errorf("call %d: %v", item, err)
					return
				}
				if mr := resp.(wire.MetaResp); mr.Stamp.Time != uint64(item) {
					mismatches.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := mismatches.Load(); n > 0 {
		t.Fatalf("%d replies demuxed to the wrong caller", n)
	}
}

// TestTCPDroppedConnectionRecovery kills the server while a pipeline of
// calls is in flight: every pending call must fail (not hang), and once a
// server is listening again the caller must redial transparently.
func TestTCPDroppedConnectionRecovery(t *testing.T) {
	wire.RegisterGob()
	h := &muxHandler{delay: map[string]time.Duration{"1": time.Second, "2": time.Second, "3": time.Second}}
	srv := NewTCPServer(h)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	caller := NewTCPCaller("alice", map[string]string{"srv": addr}, &metrics.Counters{})
	t.Cleanup(caller.Close)
	if _, err := caller.Call(context.Background(), "srv", wire.MetaReq{Item: "0"}); err != nil {
		t.Fatal(err)
	}

	// Three slow calls in flight, then the server dies under them.
	errs := make(chan error, 3)
	for i := 1; i <= 3; i++ {
		go func(i int) {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_, err := caller.Call(ctx, "srv", wire.MetaReq{Item: strconv.Itoa(i)})
			errs <- err
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // let the requests hit the wire
	srv.Close()
	for i := 0; i < 3; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Fatal("call survived server shutdown")
			}
		case <-time.After(3 * time.Second):
			t.Fatal("pending call hung after connection drop")
		}
	}

	// A replacement server on the same address: the caller redials.
	srv2 := NewTCPServer(&muxHandler{})
	if _, err := srv2.Serve(addr); err != nil {
		t.Fatalf("relisten: %v", err)
	}
	t.Cleanup(srv2.Close)
	var lastErr error
	for attempt := 0; attempt < 20; attempt++ {
		resp, err := caller.Call(context.Background(), "srv", wire.MetaReq{Item: "9"})
		if err == nil {
			if mr := resp.(wire.MetaResp); mr.Stamp.Time != 9 {
				t.Fatalf("post-recovery stamp = %d", mr.Stamp.Time)
			}
			return
		}
		lastErr = err
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("caller never recovered after server restart: %v", lastErr)
}

// TestTCPSerializedOptionStillCorrect: the Serialized baseline mode must
// remain functionally correct under concurrency (it only changes how many
// requests share the wire at once).
func TestTCPSerializedOptionStillCorrect(t *testing.T) {
	addr, _ := newMuxServer(t, &muxHandler{})
	caller := NewTCPCaller("alice", map[string]string{"srv": addr}, &metrics.Counters{}, Serialized())
	t.Cleanup(caller.Close)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				item := g*10 + j
				resp, err := caller.Call(context.Background(), "srv", wire.MetaReq{Item: strconv.Itoa(item)})
				if err != nil {
					t.Errorf("serialized call: %v", err)
					return
				}
				if mr := resp.(wire.MetaResp); mr.Stamp.Time != uint64(item) {
					t.Errorf("serialized demux mismatch: got %d want %d", mr.Stamp.Time, item)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestTCPPipeliningBeatsSerialized is the load-bearing perf property: with
// a fixed per-request server delay, N concurrent sessions through the
// multiplexed transport must complete far faster than through the
// serialized baseline, because their requests share the connection instead
// of queueing. Uses generous margins so it cannot flake under CI load.
func TestTCPPipeliningBeatsSerialized(t *testing.T) {
	const perReq = 20 * time.Millisecond
	const calls = 8
	h := &muxHandler{delay: map[string]time.Duration{}}
	for i := 0; i < calls; i++ {
		h.delay[strconv.Itoa(i)] = perReq
	}
	addr, _ := newMuxServer(t, h)

	run := func(opts ...CallerOption) time.Duration {
		caller := NewTCPCaller("alice", map[string]string{"srv": addr}, &metrics.Counters{}, opts...)
		defer caller.Close()
		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < calls; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if _, err := caller.Call(context.Background(), "srv", wire.MetaReq{Item: strconv.Itoa(i)}); err != nil {
					t.Errorf("call: %v", err)
				}
			}(i)
		}
		wg.Wait()
		return time.Since(start)
	}

	serial := run(Serialized())
	mux := run()
	// Serialized: 8 calls x 20ms queue to >=160ms. Multiplexed: all share
	// the wire, bounded by the slowest single call (~20ms). Require 2x.
	if mux*2 > serial {
		t.Fatalf("multiplexed %v not ≥2x faster than serialized %v", mux, serial)
	}
	t.Logf("serialized=%v multiplexed=%v (%.1fx)", serial, mux, float64(serial)/float64(mux))
}
