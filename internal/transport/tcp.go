package transport

import (
	"bufio"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"securestore/internal/metrics"
	"securestore/internal/wire"
)

// envelope frames one request on the wire. ID is the caller-chosen frame
// identifier echoed in the reply, which lets many requests share one
// connection (pipelining): the caller's demux loop routes each reply back
// to the Call that sent the matching request.
type envelope struct {
	ID   uint64
	From string
	Req  wire.Request
}

// replyEnvelope frames one response. Err carries an application-level
// failure as text (the caller reconstructs it as an opaque error).
type replyEnvelope struct {
	ID   uint64
	Resp wire.Response
	Err  string
}

// maxInflightPerConn bounds concurrent handler goroutines per server
// connection so a flooding client cannot exhaust server memory.
const maxInflightPerConn = 256

// frameWriter batches frame writes on a shared connection: encoders write
// into a bufio.Writer under mu, and the last writer out flushes (the same
// leader/last-flusher idea as the WAL group commit). Under concurrency,
// frames queued while another frame is being encoded share one flush —
// and therefore one write syscall, and typically one read syscall on the
// peer. A frame is never stranded: every goroutine that announces itself
// (enter) proceeds to encode and, if it is last, flush.
type frameWriter struct {
	waiters atomic.Int64
	mu      sync.Mutex
	bw      *bufio.Writer
	enc     *gob.Encoder
}

func newFrameWriter(conn net.Conn) *frameWriter {
	bw := bufio.NewWriter(conn)
	return &frameWriter{bw: bw, enc: gob.NewEncoder(bw)}
}

// encode writes one frame, flushing unless another writer is already
// waiting to append to the batch.
func (fw *frameWriter) encode(frame any) error {
	fw.waiters.Add(1)
	fw.mu.Lock()
	defer fw.mu.Unlock()
	err := fw.enc.Encode(frame)
	if fw.waiters.Add(-1) > 0 && err == nil {
		return nil // a waiting writer inherits the flush
	}
	if ferr := fw.bw.Flush(); err == nil {
		err = ferr
	}
	return err
}

// setNoDelay disables Nagle's algorithm where applicable; batching is done
// explicitly by frameWriter, so holding small frames back only adds
// latency.
func setNoDelay(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
}

// TCPServer serves a Handler over a TCP listener using gob-encoded frames.
// One goroutine per connection reads frames; each request is handled in its
// own goroutine (bounded per connection) so slow requests do not block the
// pipeline, and responses are written back matched by frame ID.
type TCPServer struct {
	handler Handler

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// NewTCPServer wraps handler for serving. Call Serve to start.
func NewTCPServer(handler Handler) *TCPServer {
	return &TCPServer{handler: handler, conns: make(map[net.Conn]struct{})}
}

// Serve listens on addr ("host:port", port 0 for ephemeral) and begins
// accepting connections in the background. It returns the bound address.
func (s *TCPServer) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return "", errors.New("transport: server already closed")
	}
	s.listener = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *TCPServer) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()

		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()

	var handlers sync.WaitGroup
	defer func() {
		handlers.Wait()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()

	setNoDelay(conn)
	dec := gob.NewDecoder(conn)
	fw := newFrameWriter(conn) // batches interleaved response frames
	sem := make(chan struct{}, maxInflightPerConn)
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			return // connection closed or corrupt
		}
		sem <- struct{}{}
		handlers.Add(1)
		go func(env envelope) {
			defer handlers.Done()
			defer func() { <-sem }()
			resp, err := s.handler.ServeRequest(context.Background(), env.From, env.Req)
			if errors.Is(err, ErrNoReply) {
				// Mute server: swallow the request, send nothing. Only this
				// frame stays unanswered; the connection keeps serving.
				return
			}
			reply := replyEnvelope{ID: env.ID}
			if err != nil {
				reply.Err = err.Error()
			} else {
				reply.Resp = resp
			}
			if err := fw.encode(&reply); err != nil {
				_ = conn.Close() // encoder is poisoned; drop the connection
			}
		}(env)
	}
}

// Close stops the listener and closes every open connection, waiting for
// connection goroutines to exit.
func (s *TCPServer) Close() {
	s.mu.Lock()
	s.closed = true
	if s.listener != nil {
		_ = s.listener.Close()
	}
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// CallerOption configures a TCPCaller.
type CallerOption func(*TCPCaller)

// Serialized restores the pre-multiplexing behaviour: at most one request
// in flight per connection, later calls queueing behind earlier ones. It
// exists so benchmarks and experiments can measure what pipelining buys;
// real deployments should never use it.
func Serialized() CallerOption {
	return func(c *TCPCaller) { c.serialized = true }
}

// WithLatencies records every call's wire round-trip time into h under
// "transport.rpc" — the time from frame encode to reply decode, isolating
// network plus peer-handler cost from the client-side protocol logic that
// spans measure.
func WithLatencies(h *metrics.HistogramSet) CallerOption {
	return func(c *TCPCaller) { c.latencies = h }
}

// TCPCaller issues requests to TCP servers. It maintains one persistent
// connection per destination and pipelines concurrent calls over it: each
// request carries a frame ID, a per-connection demux goroutine routes
// replies back to their callers, and every call honours its own context —
// a cancelled call releases immediately without disturbing the connection
// or the other in-flight requests.
type TCPCaller struct {
	origin     string
	metrics    *metrics.Counters
	latencies  *metrics.HistogramSet
	serialized bool

	mu    sync.Mutex
	addrs map[string]string // server name -> address
	conns map[string]*tcpConn
}

// tcpConn is one multiplexed connection: a shared batching frame writer
// and a demux reader that completes pending calls by frame ID.
type tcpConn struct {
	conn net.Conn
	fw   *frameWriter

	callMu sync.Mutex // held across the whole call in Serialized mode only

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan replyEnvelope
	broken  error // set once the demux loop dies; conn is unusable
}

var _ Caller = (*TCPCaller)(nil)

// NewTCPCaller creates a caller for the origin principal. addrs maps server
// names to their TCP addresses.
func NewTCPCaller(origin string, addrs map[string]string, m *metrics.Counters, opts ...CallerOption) *TCPCaller {
	copied := make(map[string]string, len(addrs))
	for k, v := range addrs {
		copied[k] = v
	}
	c := &TCPCaller{origin: origin, metrics: m, addrs: copied, conns: make(map[string]*tcpConn)}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Origin returns the caller's principal name.
func (c *TCPCaller) Origin() string { return c.origin }

// Call implements Caller over TCP. Concurrent calls to the same server are
// pipelined over one connection; each call waits only for its own reply or
// its own context, whichever comes first.
func (c *TCPCaller) Call(ctx context.Context, to string, req wire.Request) (wire.Response, error) {
	tc, err := c.conn(ctx, to)
	if err != nil {
		return nil, err
	}
	if c.serialized {
		tc.callMu.Lock()
		defer tc.callMu.Unlock()
	}

	id, ch, err := tc.register()
	if err != nil {
		c.drop(to, tc)
		return nil, fmt.Errorf("send to %s: %w", to, err)
	}

	c.metrics.AddMessage(0)
	var sent time.Time
	if c.latencies != nil {
		sent = time.Now()
	}
	err = tc.fw.encode(&envelope{ID: id, From: c.origin, Req: req})
	if err != nil {
		tc.unregister(id)
		c.drop(to, tc)
		return nil, fmt.Errorf("send to %s: %w", to, err)
	}

	select {
	case reply, ok := <-ch:
		if !ok {
			// Demux loop died: connection lost mid-call.
			c.drop(to, tc)
			return nil, fmt.Errorf("receive from %s: %w", to, tc.brokenErr())
		}
		if c.latencies != nil {
			c.latencies.Observe("transport.rpc", time.Since(sent))
		}
		c.metrics.AddMessage(0)
		if reply.Err != "" {
			return nil, fmt.Errorf("call %s: %s", to, reply.Err)
		}
		return reply.Resp, nil
	case <-ctx.Done():
		// Abandon only this frame: the connection and the other in-flight
		// calls stay healthy. A reply arriving later is discarded by the
		// demux loop.
		tc.unregister(id)
		return nil, fmt.Errorf("call %s: %w", to, ctx.Err())
	}
}

// Close closes all cached connections.
func (c *TCPCaller) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for name, tc := range c.conns {
		_ = tc.conn.Close()
		delete(c.conns, name)
	}
}

func (c *TCPCaller) conn(ctx context.Context, to string) (*tcpConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if tc, ok := c.conns[to]; ok {
		return tc, nil
	}
	addr, ok := c.addrs[to]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownServer, to)
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial %s (%s): %w", to, addr, err)
	}
	setNoDelay(conn)
	tc := &tcpConn{
		conn:    conn,
		fw:      newFrameWriter(conn),
		pending: make(map[uint64]chan replyEnvelope),
	}
	go tc.demux(gob.NewDecoder(conn))
	c.conns[to] = tc
	return tc, nil
}

// drop discards tc from the connection cache (unless a fresh connection
// already replaced it) so the next call redials.
func (c *TCPCaller) drop(to string, tc *tcpConn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.conns[to]; ok && cur == tc {
		_ = cur.conn.Close()
		delete(c.conns, to)
	}
}

// register allocates a frame ID and its reply channel.
func (tc *tcpConn) register() (uint64, chan replyEnvelope, error) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tc.broken != nil {
		return 0, nil, tc.broken
	}
	tc.nextID++
	id := tc.nextID
	ch := make(chan replyEnvelope, 1)
	tc.pending[id] = ch
	return id, ch, nil
}

// unregister abandons a frame (cancelled or failed-to-send call).
func (tc *tcpConn) unregister(id uint64) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	delete(tc.pending, id)
}

func (tc *tcpConn) brokenErr() error {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tc.broken != nil {
		return tc.broken
	}
	return errors.New("connection lost")
}

// demux routes reply frames to their pending calls until the connection
// dies, then fails every still-pending call by closing its channel.
func (tc *tcpConn) demux(dec *gob.Decoder) {
	for {
		var reply replyEnvelope
		if err := dec.Decode(&reply); err != nil {
			tc.mu.Lock()
			tc.broken = fmt.Errorf("connection lost: %v", err)
			for id, ch := range tc.pending {
				close(ch)
				delete(tc.pending, id)
			}
			tc.mu.Unlock()
			_ = tc.conn.Close()
			return
		}
		tc.mu.Lock()
		ch, ok := tc.pending[reply.ID]
		if ok {
			delete(tc.pending, reply.ID)
		}
		tc.mu.Unlock()
		if ok {
			ch <- reply // buffered; never blocks
		}
		// Unknown IDs are replies to cancelled calls: dropped silently.
	}
}
