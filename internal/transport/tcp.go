package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"securestore/internal/metrics"
	"securestore/internal/wire"
)

// envelope frames one request on the wire. ID is the caller-chosen frame
// identifier echoed in the reply, which lets many requests share one
// connection (pipelining): the caller's demux loop routes each reply back
// to the Call that sent the matching request.
type envelope struct {
	ID   uint64
	From string
	Req  wire.Request
}

// replyEnvelope frames one response. Err carries an application-level
// failure as text (the caller reconstructs it as an opaque error).
type replyEnvelope struct {
	ID   uint64
	Resp wire.Response
	Err  string

	// size is the decoded frame's wire size, filled in by the demux loop
	// for byte accounting. Unexported: never encoded.
	size int
}

// maxInflightPerConn bounds concurrent handler goroutines per server
// connection so a flooding client cannot exhaust server memory.
const maxInflightPerConn = 256

// maxFramePayload bounds one binary frame's payload so a malformed or
// hostile length prefix can never trigger an unbounded allocation. Gossip
// batches are chunked well below this (wire.DefaultGossipBatch writes per
// frame), so legitimate frames stay far under the cap.
const maxFramePayload = 64 << 20

// handshakeMagic starts every binary-codec connection, followed by the
// frame version byte. Both sides send it eagerly and validate the peer's
// before decoding any frame, so a version-mismatched (or gob-speaking)
// peer is refused at connect with a loud error instead of mis-decoding.
var handshakeMagic = [4]byte{'s', 's', 'w', 'p'}

// handshakeLen is magic plus the one-byte frame version.
const handshakeLen = 5

func handshakeBytes() [handshakeLen]byte {
	var hs [handshakeLen]byte
	copy(hs[:], handshakeMagic[:])
	hs[4] = wire.FrameVersion
	return hs
}

// checkHandshake validates a received connection preamble.
func checkHandshake(hs [handshakeLen]byte) error {
	if [4]byte(hs[:4]) != handshakeMagic {
		return errors.New("transport: peer is not a binary-codec securestore endpoint (magic mismatch; gob peer?)")
	}
	if hs[4] != wire.FrameVersion {
		return fmt.Errorf("transport: peer speaks frame version %d, want %d", hs[4], wire.FrameVersion)
	}
	return nil
}

// wireCodec is one frame-encoding strategy for TCP connections. The
// default is the hand-rolled binary codec (internal/wire codec.go): no
// reflection, no per-stream type state, pooled buffers, and exact frame
// sizes for byte accounting. The gob codec is retained as the
// pre-codec-PR baseline behind WithGobCodec.
type wireCodec interface {
	name() string
	// handshake reports whether connections exchange the version preamble.
	handshake() bool
	newEncoder(bw *bufio.Writer) frameEncoder
	newDecoder(br *bufio.Reader) frameDecoder
}

// frameEncoder writes frames into the connection's buffered writer and
// reports each frame's exact wire size.
type frameEncoder interface {
	writeEnvelope(env *envelope) (int, error)
	writeReply(rep *replyEnvelope) (int, error)
}

// frameDecoder reads frames and reports each frame's exact wire size.
type frameDecoder interface {
	readEnvelope(env *envelope) (int, error)
	readReply(rep *replyEnvelope) (int, error)
}

// --- binary codec ---

type binaryCodec struct{}

func (binaryCodec) name() string    { return "binary" }
func (binaryCodec) handshake() bool { return true }
func (binaryCodec) newEncoder(bw *bufio.Writer) frameEncoder {
	return &binaryEncoder{bw: bw}
}
func (binaryCodec) newDecoder(br *bufio.Reader) frameDecoder {
	return &binaryDecoder{br: br}
}

// binaryEncoder writes [version][uvarint len][payload] frames. The payload
// is assembled in a pooled buffer, so steady-state encoding allocates only
// what the message encoding itself copies.
type binaryEncoder struct {
	bw *bufio.Writer
}

// writeFrame emits the version byte, payload length, and payload.
func (e *binaryEncoder) writeFrame(payload []byte) (int, error) {
	var hdr [binary.MaxVarintLen64 + 1]byte
	hdr[0] = wire.FrameVersion
	n := binary.PutUvarint(hdr[1:], uint64(len(payload)))
	if _, err := e.bw.Write(hdr[:1+n]); err != nil {
		return 0, err
	}
	if _, err := e.bw.Write(payload); err != nil {
		return 0, err
	}
	return 1 + n + len(payload), nil
}

func (e *binaryEncoder) writeEnvelope(env *envelope) (int, error) {
	buf := wire.NewBuffer()
	defer buf.Release()
	b := binary.AppendUvarint(buf.B, env.ID)
	b = binary.AppendUvarint(b, uint64(len(env.From)))
	b = append(b, env.From...)
	b, err := wire.AppendRequest(b, env.Req)
	buf.B = b
	if err != nil {
		return 0, err
	}
	return e.writeFrame(b)
}

// Reply payload status bytes.
const (
	replyOK  byte = 0
	replyErr byte = 1
)

// appendReply appends rep's payload encoding (sans frame header) to b.
func appendReply(b []byte, rep *replyEnvelope) ([]byte, error) {
	b = binary.AppendUvarint(b, rep.ID)
	if rep.Err != "" {
		b = append(b, replyErr)
		b = binary.AppendUvarint(b, uint64(len(rep.Err)))
		b = append(b, rep.Err...)
		return b, nil
	}
	b = append(b, replyOK)
	return wire.AppendResponse(b, rep.Resp)
}

func (e *binaryEncoder) writeReply(rep *replyEnvelope) (int, error) {
	buf := wire.NewBuffer()
	defer buf.Release()
	b, err := appendReply(buf.B, rep)
	buf.B = b
	if err != nil {
		return 0, err
	}
	return e.writeFrame(b)
}

// uvarintLen returns the encoded size of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

type binaryDecoder struct {
	br *bufio.Reader
}

// readFrame reads one frame payload into a pooled buffer. The caller must
// finish decoding (copying what it keeps) before releasing buf.
func (d *binaryDecoder) readFrame() (*wire.Buffer, int, error) {
	ver, err := d.br.ReadByte()
	if err != nil {
		return nil, 0, err
	}
	if ver != wire.FrameVersion {
		return nil, 0, fmt.Errorf("transport: frame version %d, want %d", ver, wire.FrameVersion)
	}
	n, err := binary.ReadUvarint(d.br)
	if err != nil {
		return nil, 0, fmt.Errorf("transport: frame length: %w", err)
	}
	if n > maxFramePayload {
		return nil, 0, fmt.Errorf("transport: frame payload %d exceeds limit %d", n, maxFramePayload)
	}
	buf := wire.NewBufferSize(int(n))
	if _, err := io.ReadFull(d.br, buf.B); err != nil {
		buf.Release()
		return nil, 0, fmt.Errorf("transport: short frame: %w", err)
	}
	return buf, 1 + uvarintLen(n) + int(n), nil
}

// payloadUvarint decodes a uvarint at off, returning the value and the
// new offset (-1 on malformed input).
func payloadUvarint(p []byte, off int) (uint64, int) {
	v, n := binary.Uvarint(p[off:])
	if n <= 0 {
		return 0, -1
	}
	return v, off + n
}

// payloadString decodes a length-prefixed string at off.
func payloadString(p []byte, off int) (string, int) {
	n, off := payloadUvarint(p, off)
	if off < 0 || n > uint64(len(p)-off) {
		return "", -1
	}
	return string(p[off : off+int(n)]), off + int(n)
}

var errMalformedFrame = errors.New("transport: malformed frame")

func (d *binaryDecoder) readEnvelope(env *envelope) (int, error) {
	buf, size, err := d.readFrame()
	if err != nil {
		return 0, err
	}
	defer buf.Release()
	p := buf.B
	id, off := payloadUvarint(p, 0)
	if off < 0 {
		return 0, errMalformedFrame
	}
	from, off := payloadString(p, off)
	if off < 0 {
		return 0, errMalformedFrame
	}
	req, err := wire.DecodeRequest(p[off:])
	if err != nil {
		return 0, err
	}
	env.ID, env.From, env.Req = id, from, req
	return size, nil
}

func (d *binaryDecoder) readReply(rep *replyEnvelope) (int, error) {
	buf, size, err := d.readFrame()
	if err != nil {
		return 0, err
	}
	defer buf.Release()
	p := buf.B
	id, off := payloadUvarint(p, 0)
	if off < 0 || off >= len(p) {
		return 0, errMalformedFrame
	}
	status := p[off]
	off++
	rep.ID, rep.Resp, rep.Err = id, nil, ""
	switch status {
	case replyOK:
		resp, err := wire.DecodeResponse(p[off:])
		if err != nil {
			return 0, err
		}
		rep.Resp = resp
	case replyErr:
		msg, off := payloadString(p, off)
		if off != len(p) {
			return 0, errMalformedFrame
		}
		rep.Err = msg
	default:
		return 0, errMalformedFrame
	}
	return size, nil
}

// --- gob codec (baseline) ---

type gobCodec struct{}

func (gobCodec) name() string    { return "gob" }
func (gobCodec) handshake() bool { return false }
func (gobCodec) newEncoder(bw *bufio.Writer) frameEncoder {
	e := &gobEncoder{}
	e.enc = gob.NewEncoder(io.MultiWriter(bw, &e.count))
	return e
}
func (gobCodec) newDecoder(br *bufio.Reader) frameDecoder {
	d := &gobDecoder{count: countReader{r: br}}
	d.dec = gob.NewDecoder(&d.count)
	return d
}

// countWriter tallies bytes the gob encoder produces; encode calls run
// under the frame writer's mutex, so a before/after delta is one frame's
// exact size.
type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

type gobEncoder struct {
	enc   *gob.Encoder
	count countWriter
}

func (e *gobEncoder) writeEnvelope(env *envelope) (int, error) {
	start := e.count.n
	err := e.enc.Encode(env)
	return int(e.count.n - start), err
}

func (e *gobEncoder) writeReply(rep *replyEnvelope) (int, error) {
	start := e.count.n
	err := e.enc.Encode(rep)
	return int(e.count.n - start), err
}

// countReader tallies bytes the gob decoder consumes. It implements
// io.ByteReader so gob adds no internal buffering of its own (which would
// skew per-frame attribution by reading ahead).
type countReader struct {
	r *bufio.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}

type gobDecoder struct {
	dec   *gob.Decoder
	count countReader
}

func (d *gobDecoder) readEnvelope(env *envelope) (int, error) {
	start := d.count.n
	err := d.dec.Decode(env)
	return int(d.count.n - start), err
}

func (d *gobDecoder) readReply(rep *replyEnvelope) (int, error) {
	start := d.count.n
	err := d.dec.Decode(rep)
	return int(d.count.n - start), err
}

// --- frame writer ---

// frameWriter batches frame writes on a shared connection: encoders write
// into a bufio.Writer under mu, and the last writer out flushes (the same
// leader/last-flusher idea as the WAL group commit). Under concurrency,
// frames queued while another frame is being encoded share one flush —
// and therefore one write syscall, and typically one read syscall on the
// peer. A frame is never stranded: every goroutine that announces itself
// proceeds to encode and, if it is last, flush.
type frameWriter struct {
	waiters atomic.Int64
	mu      sync.Mutex
	bw      *bufio.Writer
	enc     frameEncoder
}

func newFrameWriter(conn net.Conn, c wireCodec) *frameWriter {
	bw := bufio.NewWriter(conn)
	return &frameWriter{bw: bw, enc: c.newEncoder(bw)}
}

// bufferHandshake queues the connection preamble without flushing (it
// rides out with the first frame, or an explicit flush).
func (fw *frameWriter) bufferHandshake() error {
	hs := handshakeBytes()
	fw.mu.Lock()
	defer fw.mu.Unlock()
	_, err := fw.bw.Write(hs[:])
	return err
}

// flush forces buffered bytes out (used to push the server-side
// handshake before any reply exists).
func (fw *frameWriter) flush() error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return fw.bw.Flush()
}

// finishLocked applies the group-flush rule after one frame was encoded.
// Caller holds fw.mu.
func (fw *frameWriter) finishLocked(n int, err error) (int, error) {
	if fw.waiters.Add(-1) > 0 && err == nil {
		return n, nil // a waiting writer inherits the flush
	}
	if ferr := fw.bw.Flush(); err == nil {
		err = ferr
	}
	return n, err
}

// sendEnvelope writes one request frame, flushing unless another writer
// is already waiting to append to the batch. It returns the frame's wire
// size.
func (fw *frameWriter) sendEnvelope(env *envelope) (int, error) {
	fw.waiters.Add(1)
	fw.mu.Lock()
	defer fw.mu.Unlock()
	n, err := fw.enc.writeEnvelope(env)
	return fw.finishLocked(n, err)
}

// sendReply writes one reply frame under the same group-flush rule.
func (fw *frameWriter) sendReply(rep *replyEnvelope) (int, error) {
	fw.waiters.Add(1)
	fw.mu.Lock()
	defer fw.mu.Unlock()
	n, err := fw.enc.writeReply(rep)
	return fw.finishLocked(n, err)
}

// setNoDelay disables Nagle's algorithm where applicable; batching is done
// explicitly by frameWriter, so holding small frames back only adds
// latency.
func setNoDelay(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
}

// --- options ---

// CallerOption configures a TCPCaller.
type CallerOption interface{ applyCaller(*TCPCaller) }

// ServerOption configures a TCPServer.
type ServerOption interface{ applyServer(*TCPServer) }

// Option configures either side of the TCP transport (codec selection).
type Option interface {
	CallerOption
	ServerOption
}

type callerOptionFunc func(*TCPCaller)

func (f callerOptionFunc) applyCaller(c *TCPCaller) { f(c) }

type serverOptionFunc func(*TCPServer)

func (f serverOptionFunc) applyServer(s *TCPServer) { f(s) }

// Serialized restores the pre-multiplexing behaviour: at most one request
// in flight per connection, later calls queueing behind earlier ones. It
// exists so benchmarks and experiments can measure what pipelining buys;
// real deployments should never use it.
func Serialized() CallerOption {
	return callerOptionFunc(func(c *TCPCaller) { c.serialized = true })
}

// WithLatencies records every call's wire round-trip time into h under
// "transport.rpc" — the time from frame encode to reply decode, isolating
// network plus peer-handler cost from the client-side protocol logic that
// spans measure.
func WithLatencies(h *metrics.HistogramSet) CallerOption {
	return callerOptionFunc(func(c *TCPCaller) { c.latencies = h })
}

// WithServerCounters records the server side's wire byte accounting
// (rx/tx bytes per operation) on m.
func WithServerCounters(m *metrics.Counters) ServerOption {
	return serverOptionFunc(func(s *TCPServer) { s.metrics = m })
}

type codecOption struct{ c wireCodec }

func (o codecOption) applyCaller(c *TCPCaller) { c.codec = o.c }
func (o codecOption) applyServer(s *TCPServer) { s.codec = o.c }

// WithGobCodec switches a caller or server back to gob-encoded frames —
// the pre-binary-codec wire protocol, kept as the benchmark baseline
// (mirroring Serialized for the mux work). Both endpoints must agree:
// binary peers refuse gob peers at connect and vice versa. Requires
// wire.RegisterGob at process start. Real deployments should use the
// default binary codec.
func WithGobCodec() Option { return codecOption{gobCodec{}} }

// --- server ---

// TCPServer serves a Handler over a TCP listener. One goroutine per
// connection reads frames (binary codec by default); each request is
// handled in its own goroutine (bounded per connection) so slow requests
// do not block the pipeline, and responses are written back matched by
// frame ID.
type TCPServer struct {
	handler Handler
	codec   wireCodec
	metrics *metrics.Counters
	writer  *serverWriter

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// NewTCPServer wraps handler for serving. Call Serve to start.
func NewTCPServer(handler Handler, opts ...ServerOption) *TCPServer {
	s := &TCPServer{handler: handler, codec: binaryCodec{}, conns: make(map[net.Conn]struct{})}
	for _, opt := range opts {
		opt.applyServer(s)
	}
	s.writer = newServerWriter(s.metrics)
	return s
}

// Serve listens on addr ("host:port", port 0 for ephemeral) and begins
// accepting connections in the background. It returns the bound address.
func (s *TCPServer) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return "", errors.New("transport: server already closed")
	}
	s.listener = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *TCPServer) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()

		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()

	var handlers sync.WaitGroup
	defer func() {
		handlers.Wait()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()

	setNoDelay(conn)
	br := bufio.NewReader(conn)
	// Binary connections reply through the server-wide coalescing writev
	// writer; the gob baseline keeps its per-connection frameWriter.
	var rs replySender
	if _, ok := s.codec.(binaryCodec); ok {
		rs = s.writer.newConn(conn)
	} else {
		rs = newFrameWriter(conn, s.codec)
	}
	if s.codec.handshake() {
		// Announce our frame version immediately (the client demux blocks
		// on it, and no reply exists yet to ride with), then require the
		// client's before decoding anything: a mismatched peer is refused
		// here, at connect.
		hs := handshakeBytes()
		if _, err := conn.Write(hs[:]); err != nil {
			return
		}
		var peer [handshakeLen]byte
		if _, err := io.ReadFull(br, peer[:]); err != nil {
			return
		}
		if err := checkHandshake(peer); err != nil {
			return // refused: close without serving a single frame
		}
	}
	dec := s.codec.newDecoder(br)
	sem := make(chan struct{}, maxInflightPerConn)
	for {
		var env envelope
		n, err := dec.readEnvelope(&env)
		if err != nil {
			return // connection closed, version-mismatched, or corrupt
		}
		op := wire.RequestName(env.Req)
		s.metrics.AddRxBytes(op, n)
		sem <- struct{}{}
		handlers.Add(1)
		go func(env envelope, op string) {
			defer handlers.Done()
			defer func() { <-sem }()
			resp, err := s.handler.ServeRequest(context.Background(), env.From, env.Req)
			if errors.Is(err, ErrNoReply) {
				// Mute server: swallow the request, send nothing. Only this
				// frame stays unanswered; the connection keeps serving.
				return
			}
			reply := replyEnvelope{ID: env.ID}
			if err != nil {
				reply.Err = err.Error()
			} else {
				reply.Resp = resp
			}
			wn, err := rs.sendReply(&reply)
			if err != nil && errors.Is(err, wire.ErrUnknownType) {
				// The handler produced a type the binary codec cannot carry
				// (nothing was written): report it to the caller instead of
				// dropping the connection.
				fallback := replyEnvelope{ID: env.ID, Err: err.Error()}
				wn, err = rs.sendReply(&fallback)
			}
			if err != nil {
				_ = conn.Close() // writer is poisoned; drop the connection
				return
			}
			s.metrics.AddTxBytes(op, wn)
		}(env, op)
	}
}

// Close stops the listener and closes every open connection, waiting for
// connection goroutines to exit.
func (s *TCPServer) Close() {
	s.mu.Lock()
	s.closed = true
	if s.listener != nil {
		_ = s.listener.Close()
	}
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// --- caller ---

// TCPCaller issues requests to TCP servers. It maintains one persistent
// connection per destination and pipelines concurrent calls over it: each
// request carries a frame ID, a per-connection demux goroutine routes
// replies back to their callers, and every call honours its own context —
// a cancelled call releases immediately without disturbing the connection
// or the other in-flight requests.
type TCPCaller struct {
	origin     string
	metrics    *metrics.Counters
	latencies  *metrics.HistogramSet
	serialized bool
	codec      wireCodec

	mu    sync.Mutex
	addrs map[string]string // server name -> address
	conns map[string]*tcpConn
}

// tcpConn is one multiplexed connection: a shared batching frame writer
// and a demux reader that completes pending calls by frame ID.
type tcpConn struct {
	conn net.Conn
	fw   *frameWriter

	callMu sync.Mutex // held across the whole call in Serialized mode only

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan replyEnvelope
	broken  error // set once the demux loop dies; conn is unusable
}

var _ Caller = (*TCPCaller)(nil)

// NewTCPCaller creates a caller for the origin principal. addrs maps server
// names to their TCP addresses.
func NewTCPCaller(origin string, addrs map[string]string, m *metrics.Counters, opts ...CallerOption) *TCPCaller {
	copied := make(map[string]string, len(addrs))
	for k, v := range addrs {
		copied[k] = v
	}
	c := &TCPCaller{origin: origin, metrics: m, codec: binaryCodec{}, addrs: copied, conns: make(map[string]*tcpConn)}
	for _, opt := range opts {
		opt.applyCaller(c)
	}
	return c
}

// Origin returns the caller's principal name.
func (c *TCPCaller) Origin() string { return c.origin }

// Call implements Caller over TCP. Concurrent calls to the same server are
// pipelined over one connection; each call waits only for its own reply or
// its own context, whichever comes first.
func (c *TCPCaller) Call(ctx context.Context, to string, req wire.Request) (wire.Response, error) {
	tc, err := c.conn(ctx, to)
	if err != nil {
		return nil, err
	}
	if c.serialized {
		tc.callMu.Lock()
		defer tc.callMu.Unlock()
	}

	id, ch, err := tc.register()
	if err != nil {
		c.drop(to, tc)
		return nil, fmt.Errorf("send to %s: %w", to, err)
	}

	op := wire.RequestName(req)
	var sent time.Time
	if c.latencies != nil {
		sent = time.Now()
	}
	n, err := tc.fw.sendEnvelope(&envelope{ID: id, From: c.origin, Req: req})
	if err != nil {
		tc.unregister(id)
		if errors.Is(err, wire.ErrUnknownType) {
			// Nothing hit the wire: the connection stays healthy.
			return nil, fmt.Errorf("send to %s: %w", to, err)
		}
		c.drop(to, tc)
		return nil, fmt.Errorf("send to %s: %w", to, err)
	}
	c.metrics.AddMessage(n)
	c.metrics.AddTxBytes(op, n)

	select {
	case reply, ok := <-ch:
		if !ok {
			// Demux loop died: connection lost mid-call.
			c.drop(to, tc)
			return nil, fmt.Errorf("receive from %s: %w", to, tc.brokenErr())
		}
		if c.latencies != nil {
			c.latencies.Observe("transport.rpc", time.Since(sent))
		}
		c.metrics.AddMessage(reply.size)
		c.metrics.AddRxBytes(op, reply.size)
		if reply.Err != "" {
			return nil, fmt.Errorf("call %s: %s", to, reply.Err)
		}
		return reply.Resp, nil
	case <-ctx.Done():
		// Abandon only this frame: the connection and the other in-flight
		// calls stay healthy. A reply arriving later is discarded by the
		// demux loop.
		tc.unregister(id)
		return nil, fmt.Errorf("call %s: %w", to, ctx.Err())
	}
}

// Close closes all cached connections.
func (c *TCPCaller) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for name, tc := range c.conns {
		_ = tc.conn.Close()
		delete(c.conns, name)
	}
}

func (c *TCPCaller) conn(ctx context.Context, to string) (*tcpConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if tc, ok := c.conns[to]; ok {
		return tc, nil
	}
	addr, ok := c.addrs[to]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownServer, to)
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial %s (%s): %w", to, addr, err)
	}
	setNoDelay(conn)
	tc := &tcpConn{
		conn:    conn,
		fw:      newFrameWriter(conn, c.codec),
		pending: make(map[uint64]chan replyEnvelope),
	}
	if c.codec.handshake() {
		// Our preamble is buffered (it ships with the first frame); the
		// server's is validated by the demux loop before any reply.
		if err := tc.fw.bufferHandshake(); err != nil {
			_ = conn.Close()
			return nil, fmt.Errorf("dial %s (%s): %w", to, addr, err)
		}
	}
	go tc.demux(c.codec, bufio.NewReader(conn))
	c.conns[to] = tc
	return tc, nil
}

// drop discards tc from the connection cache (unless a fresh connection
// already replaced it) so the next call redials.
func (c *TCPCaller) drop(to string, tc *tcpConn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.conns[to]; ok && cur == tc {
		_ = cur.conn.Close()
		delete(c.conns, to)
	}
}

// register allocates a frame ID and its reply channel.
func (tc *tcpConn) register() (uint64, chan replyEnvelope, error) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tc.broken != nil {
		return 0, nil, tc.broken
	}
	tc.nextID++
	id := tc.nextID
	ch := make(chan replyEnvelope, 1)
	tc.pending[id] = ch
	return id, ch, nil
}

// unregister abandons a frame (cancelled or failed-to-send call).
func (tc *tcpConn) unregister(id uint64) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	delete(tc.pending, id)
}

func (tc *tcpConn) brokenErr() error {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tc.broken != nil {
		return tc.broken
	}
	return errors.New("connection lost")
}

// fail marks the connection broken and fails every pending call.
func (tc *tcpConn) fail(err error) {
	tc.mu.Lock()
	tc.broken = err
	for id, ch := range tc.pending {
		close(ch)
		delete(tc.pending, id)
	}
	tc.mu.Unlock()
	_ = tc.conn.Close()
}

// demux routes reply frames to their pending calls until the connection
// dies, then fails every still-pending call by closing its channel. With
// the binary codec it first validates the server's connection preamble,
// so a version-mismatched peer fails every call with a version error
// rather than a decode mystery.
func (tc *tcpConn) demux(codec wireCodec, br *bufio.Reader) {
	if codec.handshake() {
		var hs [handshakeLen]byte
		if _, err := io.ReadFull(br, hs[:]); err != nil {
			tc.fail(fmt.Errorf("connection lost before handshake: %v", err))
			return
		}
		if err := checkHandshake(hs); err != nil {
			tc.fail(err)
			return
		}
	}
	dec := codec.newDecoder(br)
	for {
		var reply replyEnvelope
		n, err := dec.readReply(&reply)
		if err != nil {
			tc.fail(fmt.Errorf("connection lost: %v", err))
			return
		}
		reply.size = n
		tc.mu.Lock()
		ch, ok := tc.pending[reply.ID]
		if ok {
			delete(tc.pending, reply.ID)
		}
		tc.mu.Unlock()
		if ok {
			ch <- reply // buffered; never blocks
		}
		// Unknown IDs are replies to cancelled calls: dropped silently.
	}
}
