package transport

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"

	"securestore/internal/metrics"
	"securestore/internal/wire"
)

// envelope frames one request on the wire.
type envelope struct {
	From string
	Req  wire.Request
}

// replyEnvelope frames one response. Err carries an application-level
// failure as text (the caller reconstructs it as an opaque error).
type replyEnvelope struct {
	Resp wire.Response
	Err  string
}

// TCPServer serves a Handler over a TCP listener using gob-encoded frames.
// One goroutine per connection; requests on a connection are processed
// sequentially.
type TCPServer struct {
	handler Handler

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// NewTCPServer wraps handler for serving. Call Serve to start.
func NewTCPServer(handler Handler) *TCPServer {
	return &TCPServer{handler: handler, conns: make(map[net.Conn]struct{})}
}

// Serve listens on addr ("host:port", port 0 for ephemeral) and begins
// accepting connections in the background. It returns the bound address.
func (s *TCPServer) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return "", errors.New("transport: server already closed")
	}
	s.listener = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *TCPServer) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()

		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()

	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			return // connection closed or corrupt
		}
		resp, err := s.handler.ServeRequest(context.Background(), env.From, env.Req)
		if errors.Is(err, ErrNoReply) {
			// Mute server: swallow the request, send nothing.
			continue
		}
		var reply replyEnvelope
		if err != nil {
			reply.Err = err.Error()
		} else {
			reply.Resp = resp
		}
		if err := enc.Encode(&reply); err != nil {
			return
		}
	}
}

// Close stops the listener and closes every open connection, waiting for
// connection goroutines to exit.
func (s *TCPServer) Close() {
	s.mu.Lock()
	s.closed = true
	if s.listener != nil {
		_ = s.listener.Close()
	}
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// TCPCaller issues requests to TCP servers. It maintains one persistent
// connection per destination, serializing calls on each.
type TCPCaller struct {
	origin  string
	metrics *metrics.Counters

	mu    sync.Mutex
	addrs map[string]string // server name -> address
	conns map[string]*tcpConn
}

type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

var _ Caller = (*TCPCaller)(nil)

// NewTCPCaller creates a caller for the origin principal. addrs maps server
// names to their TCP addresses.
func NewTCPCaller(origin string, addrs map[string]string, m *metrics.Counters) *TCPCaller {
	copied := make(map[string]string, len(addrs))
	for k, v := range addrs {
		copied[k] = v
	}
	return &TCPCaller{origin: origin, metrics: m, addrs: copied, conns: make(map[string]*tcpConn)}
}

// Origin returns the caller's principal name.
func (c *TCPCaller) Origin() string { return c.origin }

// Call implements Caller over TCP.
func (c *TCPCaller) Call(ctx context.Context, to string, req wire.Request) (wire.Response, error) {
	tc, err := c.conn(to)
	if err != nil {
		return nil, err
	}

	tc.mu.Lock()
	defer tc.mu.Unlock()

	if deadline, ok := ctx.Deadline(); ok {
		_ = tc.conn.SetDeadline(deadline)
	}
	c.metrics.AddMessage(0)
	if err := tc.enc.Encode(&envelope{From: c.origin, Req: req}); err != nil {
		c.drop(to)
		return nil, fmt.Errorf("send to %s: %w", to, err)
	}
	var reply replyEnvelope
	if err := tc.dec.Decode(&reply); err != nil {
		c.drop(to)
		return nil, fmt.Errorf("receive from %s: %w", to, err)
	}
	c.metrics.AddMessage(0)
	if reply.Err != "" {
		return nil, fmt.Errorf("call %s: %s", to, reply.Err)
	}
	return reply.Resp, nil
}

// Close closes all cached connections.
func (c *TCPCaller) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for name, tc := range c.conns {
		_ = tc.conn.Close()
		delete(c.conns, name)
	}
}

func (c *TCPCaller) conn(to string) (*tcpConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if tc, ok := c.conns[to]; ok {
		return tc, nil
	}
	addr, ok := c.addrs[to]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownServer, to)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial %s (%s): %w", to, addr, err)
	}
	tc := &tcpConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
	c.conns[to] = tc
	return tc, nil
}

func (c *TCPCaller) drop(to string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if tc, ok := c.conns[to]; ok {
		_ = tc.conn.Close()
		delete(c.conns, to)
	}
}
