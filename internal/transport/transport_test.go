package transport

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"securestore/internal/metrics"
	"securestore/internal/simnet"
	"securestore/internal/wire"
)

type echoHandler struct {
	mu       sync.Mutex
	lastFrom string
	mute     bool
	fail     bool
}

func (h *echoHandler) ServeRequest(_ context.Context, from string, _ wire.Request) (wire.Response, error) {
	h.mu.Lock()
	h.lastFrom = from
	mute, fail := h.mute, h.fail
	h.mu.Unlock()
	if mute {
		return nil, ErrNoReply
	}
	if fail {
		return nil, errors.New("handler failure")
	}
	return wire.Ack{}, nil
}

func (h *echoHandler) from() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lastFrom
}

func TestBusCallDeliversOrigin(t *testing.T) {
	bus := NewBus(nil)
	h := &echoHandler{}
	bus.Register("srv", h)
	caller := bus.Caller("alice", &metrics.Counters{})

	resp, err := caller.Call(context.Background(), "srv", wire.MetaReq{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := resp.(wire.Ack); !ok {
		t.Fatalf("resp = %T, want Ack", resp)
	}
	if h.from() != "alice" {
		t.Fatalf("handler saw origin %q, want alice", h.from())
	}
	if caller.Origin() != "alice" {
		t.Fatalf("Origin = %q", caller.Origin())
	}
}

func TestBusCallCountsMessages(t *testing.T) {
	bus := NewBus(nil)
	bus.Register("srv", &echoHandler{})
	m := &metrics.Counters{}
	caller := bus.Caller("alice", m)

	if _, err := caller.Call(context.Background(), "srv", wire.MetaReq{}); err != nil {
		t.Fatal(err)
	}
	if got := m.MessagesSent(); got != 2 {
		t.Fatalf("messages = %d, want 2 (request + response)", got)
	}
}

func TestBusCallUnknownServer(t *testing.T) {
	bus := NewBus(nil)
	caller := bus.Caller("alice", &metrics.Counters{})
	if _, err := caller.Call(context.Background(), "ghost", wire.MetaReq{}); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("err = %v, want ErrUnknownServer", err)
	}
}

func TestBusCallHandlerError(t *testing.T) {
	bus := NewBus(nil)
	bus.Register("srv", &echoHandler{fail: true})
	m := &metrics.Counters{}
	caller := bus.Caller("alice", m)
	if _, err := caller.Call(context.Background(), "srv", wire.MetaReq{}); err == nil {
		t.Fatal("handler error not propagated")
	}
	// Only the request leg is counted: the error reply is an application
	// error carried back, but a failed op doesn't count a response message.
	if got := m.MessagesSent(); got != 1 {
		t.Fatalf("messages = %d, want 1", got)
	}
}

func TestBusMuteServerBlocksUntilDeadline(t *testing.T) {
	bus := NewBus(nil)
	bus.Register("srv", &echoHandler{mute: true})
	caller := bus.Caller("alice", &metrics.Counters{})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := caller.Call(ctx, "srv", wire.MetaReq{})
	if err == nil {
		t.Fatal("mute server produced a response")
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("mute call returned after %v, want to block until deadline", elapsed)
	}
}

func TestBusDeregister(t *testing.T) {
	bus := NewBus(nil)
	bus.Register("srv", &echoHandler{})
	bus.Deregister("srv")
	caller := bus.Caller("alice", &metrics.Counters{})
	if _, err := caller.Call(context.Background(), "srv", wire.MetaReq{}); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("err = %v, want ErrUnknownServer after deregister", err)
	}
}

func TestBusAppliesSimnetDelay(t *testing.T) {
	net := simnet.New(simnet.Profile{Base: 20 * time.Millisecond}, 1)
	bus := NewBus(net)
	bus.Register("srv", &echoHandler{})
	caller := bus.Caller("alice", &metrics.Counters{})

	start := time.Now()
	if _, err := caller.Call(context.Background(), "srv", wire.MetaReq{}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("round trip %v, want >= 40ms (two 20ms legs)", elapsed)
	}
}

func TestBusPartitionBlocksCall(t *testing.T) {
	net := simnet.New(simnet.Instant, 1)
	bus := NewBus(net)
	bus.Register("srv", &echoHandler{})
	net.Partition(1, "alice")
	net.Partition(2, "srv")
	caller := bus.Caller("alice", &metrics.Counters{})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := caller.Call(ctx, "srv", wire.MetaReq{}); err == nil {
		t.Fatal("partitioned call succeeded")
	}
}

func TestHandlerFunc(t *testing.T) {
	called := false
	h := HandlerFunc(func(context.Context, string, wire.Request) (wire.Response, error) {
		called = true
		return wire.Ack{}, nil
	})
	if _, err := h.ServeRequest(context.Background(), "x", wire.MetaReq{}); err != nil || !called {
		t.Fatal("HandlerFunc did not dispatch")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	wire.RegisterGob()
	h := &echoHandler{}
	srv := NewTCPServer(h)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	m := &metrics.Counters{}
	caller := NewTCPCaller("alice", map[string]string{"srv": addr}, m)
	t.Cleanup(caller.Close)

	resp, err := caller.Call(context.Background(), "srv", wire.MetaReq{Item: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := resp.(wire.Ack); !ok {
		t.Fatalf("resp = %T", resp)
	}
	if h.from() != "alice" {
		t.Fatalf("server saw origin %q", h.from())
	}
	if m.MessagesSent() != 2 {
		t.Fatalf("messages = %d, want 2", m.MessagesSent())
	}
}

func TestTCPHandlerErrorPropagates(t *testing.T) {
	wire.RegisterGob()
	srv := NewTCPServer(&echoHandler{fail: true})
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	caller := NewTCPCaller("alice", map[string]string{"srv": addr}, &metrics.Counters{})
	t.Cleanup(caller.Close)
	if _, err := caller.Call(context.Background(), "srv", wire.MetaReq{}); err == nil {
		t.Fatal("handler error not propagated over TCP")
	}
}

func TestTCPMuteServerTimesOut(t *testing.T) {
	wire.RegisterGob()
	srv := NewTCPServer(&echoHandler{mute: true})
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	caller := NewTCPCaller("alice", map[string]string{"srv": addr}, &metrics.Counters{})
	t.Cleanup(caller.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := caller.Call(ctx, "srv", wire.MetaReq{}); err == nil {
		t.Fatal("mute server produced a TCP response")
	}
}

func TestTCPUnknownDestination(t *testing.T) {
	caller := NewTCPCaller("alice", nil, &metrics.Counters{})
	if _, err := caller.Call(context.Background(), "ghost", wire.MetaReq{}); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("err = %v, want ErrUnknownServer", err)
	}
}

func TestTCPConcurrentCallers(t *testing.T) {
	wire.RegisterGob()
	srv := NewTCPServer(&echoHandler{})
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	caller := NewTCPCaller("alice", map[string]string{"srv": addr}, &metrics.Counters{})
	t.Cleanup(caller.Close)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if _, err := caller.Call(context.Background(), "srv", wire.MetaReq{}); err != nil {
					t.Errorf("call: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestTCPServerCloseUnblocksClients(t *testing.T) {
	wire.RegisterGob()
	srv := NewTCPServer(&echoHandler{})
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	caller := NewTCPCaller("alice", map[string]string{"srv": addr}, &metrics.Counters{})
	t.Cleanup(caller.Close)
	if _, err := caller.Call(context.Background(), "srv", wire.MetaReq{}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if _, err := caller.Call(ctx, "srv", wire.MetaReq{}); err == nil {
		t.Fatal("call to closed server succeeded")
	}
}
