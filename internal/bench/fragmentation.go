package bench

import (
	"bytes"
	"context"
	"fmt"
	"time"
)

// fragPath is one storage-path configuration T6 compares: the replicated
// baseline (full value to every write-set replica) or an erasure-coded
// variant (one ~|v|/k fragment per replica).
type fragPath struct {
	name string
	// params configures the client; nil keeps the replicated path.
	params *envParams
	// contacted is how many replicas a write sends bytes to: the b+1
	// write set when replicated, all n when erasure-coded (dispersal
	// stores fragment i on server i and waits for k+b acks).
	contacted int
	// acks is the write quorum: b+1 replicated, k+b erasure-coded.
	acks int
}

// T6Fragmentation measures what the erasure-coded data path buys in wire
// bytes for large values: the replicated path sends the full value to each
// of the b+1 write-set replicas, while dispersal sends one ~|value|/k
// fragment (plus the fixed n×32-byte cross-checksum envelope header) to
// each of the n replicas, waiting for k+b acks. Client egress is read off
// securestore_tx_bytes_total, so the table reports exactly what the
// /metrics endpoint reports in production. At n=4, b=1 the feasible
// thresholds are k=2 (write quorum 3 of 4, one replica of write-time
// slack) and k=3 (write quorum 4 of 4, maximum space efficiency, no
// write-time slack) — the per-replica reduction for large values is ~k×.
func T6Fragmentation(opts Options) (*Table, error) {
	t := &Table{
		ID:     "T6",
		Title:  "replicated vs erasure-coded data path: client wire bytes per write (n=4, b=1, loopback sockets)",
		Header: []string{"value size", "path", "sends (acks)", "tx KB/op", "per-replica KB", "per-replica vs replicated", "MB/s"},
		Notes: []string{
			"tx KB/op = securestore_tx_bytes_total delta / writes (includes the read-back requests, which are tiny)",
			"per-replica KB = tx KB/op divided by replicas sent to: the b+1 write set when replicated, all n for dispersal (fragment i to server i, k+b acks)",
			"each fragment is ~|value|/k plus the n x 32-byte signed cross-checksum vector",
			"k=2 keeps one replica of write-time slack (3 of 4 acks); k=3 is the space-efficiency maximum at n=4, b=1 and needs all 4 acks",
			"MB/s counts value payload through write+read-back pairs (wall clock, loopback)",
		},
	}
	sizes := pick(opts, []int{64 << 10, 256 << 10, 1 << 20, 4 << 20}, []int{64 << 10, 256 << 10})
	ops := pick(opts, 8, 3)
	paths := []fragPath{
		{name: "replicated", params: nil, contacted: 2, acks: 2},
		{name: "erasure k=2", params: &envParams{fragThreshold: 1}, contacted: 4, acks: 3},
		{name: "erasure k=3", params: &envParams{fragThreshold: 1, fragK: 3}, contacted: 4, acks: 4},
	}

	for _, size := range sizes {
		value := make([]byte, size)
		for i := range value {
			value[i] = byte(i * 31)
		}
		var replicatedPerReplica float64
		for _, path := range paths {
			txPerOp, mbps, err := runFragWorkload(opts.seed(), path.params, value, ops)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", t.ID, path.name, err)
			}
			perReplica := txPerOp / float64(path.contacted)
			reduction := "1.00x"
			if path.params == nil {
				replicatedPerReplica = perReplica
			} else {
				reduction = fmt.Sprintf("%.2fx", replicatedPerReplica/perReplica)
			}
			t.AddRow(
				fmt.Sprintf("%d KiB", size>>10),
				path.name,
				fmt.Sprintf("%d (%d)", path.contacted, path.acks),
				fmt.Sprintf("%.1f", txPerOp/1024),
				fmt.Sprintf("%.1f", perReplica/1024),
				reduction,
				fmt.Sprintf("%.1f", mbps),
			)
		}
	}
	return t, nil
}

// runFragWorkload writes ops copies of value to private items over a fresh
// loopback deployment, reads each back (verifying the round trip), and
// returns the client's transmitted wire bytes per write plus the payload
// throughput of the whole write+read sequence.
func runFragWorkload(seed string, params *envParams, value []byte, ops int) (txPerOp, mbps float64, err error) {
	env, err := newTCPStoreEnv(seed, 0, nil, params)
	if err != nil {
		return 0, 0, err
	}
	defer env.Close()
	ctx := context.Background()
	txBefore := env.M.TxBytesTotal()
	start := time.Now()
	for i := 0; i < ops; i++ {
		item := fmt.Sprintf("blob-%d", i)
		if _, err := env.Client.Write(ctx, item, value); err != nil {
			return 0, 0, fmt.Errorf("write %s: %w", item, err)
		}
		got, _, err := env.Client.Read(ctx, item)
		if err != nil {
			return 0, 0, fmt.Errorf("read %s: %w", item, err)
		}
		if !bytes.Equal(got, value) {
			return 0, 0, fmt.Errorf("read %s: value mismatch (%d bytes, want %d)", item, len(got), len(value))
		}
	}
	elapsed := time.Since(start)
	txDelta := env.M.TxBytesTotal() - txBefore
	payload := float64(2*ops) * float64(len(value))
	return float64(txDelta) / float64(ops), payload / (1 << 20) / elapsed.Seconds(), nil
}
