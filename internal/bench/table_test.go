package bench

import (
	"strings"
	"testing"
)

func TestTableFormatAligned(t *testing.T) {
	tbl := &Table{
		ID:     "T1",
		Title:  "demo",
		Header: []string{"name", "value"},
		Notes:  []string{"a note"},
	}
	tbl.AddRow("short", 1)
	tbl.AddRow("much-longer-cell", 123456)
	tbl.AddRow("float", 3.14159)

	out := tbl.Format()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, rule, 3 rows... plus note = 7? count below
		// title + header + rule + 3 rows + 1 note = 7
		if len(lines) != 7 {
			t.Fatalf("lines = %d:\n%s", len(lines), out)
		}
	}
	if !strings.HasPrefix(lines[0], "T1 — demo") {
		t.Fatalf("title line = %q", lines[0])
	}
	// The value column must be aligned: every row's second column starts
	// at the same offset.
	idx := strings.Index(lines[1], "value")
	for _, row := range lines[3:6] {
		if len(row) < idx {
			t.Fatalf("row %q shorter than header alignment", row)
		}
	}
	if !strings.Contains(out, "3.14") {
		t.Fatalf("float cell not formatted: %s", out)
	}
	if !strings.Contains(out, "note: a note") {
		t.Fatalf("note missing: %s", out)
	}
}

func TestAddRowStringifiesTypes(t *testing.T) {
	tbl := &Table{Header: []string{"a", "b", "c"}}
	tbl.AddRow("s", 42, 1.5)
	row := tbl.Rows[0]
	if row[0] != "s" || row[1] != "42" || row[2] != "1.50" {
		t.Fatalf("row = %v", row)
	}
}

func TestPickQuickVsFull(t *testing.T) {
	if got := pick(Options{Quick: true}, "full", "quick"); got != "quick" {
		t.Fatalf("pick quick = %q", got)
	}
	if got := pick(Options{}, "full", "quick"); got != "full" {
		t.Fatalf("pick full = %q", got)
	}
}

func TestOptionsSeedDefault(t *testing.T) {
	if (Options{}).seed() == "" {
		t.Fatal("empty default seed")
	}
	if (Options{Seed: "x"}).seed() != "x" {
		t.Fatal("explicit seed ignored")
	}
}

func TestAllHaveUniqueIDs(t *testing.T) {
	seen := make(map[string]bool)
	for _, e := range All() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Name == "" {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}
