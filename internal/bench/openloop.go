package bench

// openloop.go implements the open-loop driver behind `benchtab remote`
// (experiment R1). Closed-loop harnesses (runTCPSessions and every T
// table) issue the next operation only after the previous one returns, so
// a slow server silently lowers the offered load and the recorded
// latencies hide queueing delay — the "coordinated omission" measurement
// error. The open loop fixes both: operations are released on a fixed
// arrival schedule regardless of how the system keeps up, and every
// latency is measured from the operation's *intended* start time, so time
// an op spent queued behind a stalled cluster is charged to the op.
//
// The schedule (ArrivalTimes) and the operation stream (internal/workload)
// are pure functions of the seed, so a run is reproducible up to
// wall-clock noise and tests can pin the schedule exactly.

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"securestore/internal/metrics"
	"securestore/internal/workload"
)

// Arrival selects the inter-arrival process of an open-loop schedule.
type Arrival int

const (
	// ArrivalUniform spaces operations exactly 1/rate apart — the
	// deterministic paced load of classic load generators.
	ArrivalUniform Arrival = iota
	// ArrivalPoisson draws exponential inter-arrival gaps with mean
	// 1/rate, modelling independent clients: bursts and lulls at the same
	// offered rate, which is what exposes queueing behaviour near
	// saturation.
	ArrivalPoisson
)

// String renders the arrival process name as accepted by ParseArrival.
func (a Arrival) String() string {
	if a == ArrivalPoisson {
		return "poisson"
	}
	return "uniform"
}

// ParseArrival parses an arrival process name ("uniform" or "poisson").
func ParseArrival(s string) (Arrival, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "uniform":
		return ArrivalUniform, nil
	case "poisson":
		return ArrivalPoisson, nil
	}
	return 0, fmt.Errorf("unknown arrival process %q (uniform or poisson)", s)
}

// OpenLoop parameterizes one fixed-rate open-loop run.
type OpenLoop struct {
	// Rate is the offered load in operations per second.
	Rate float64
	// Duration is the dispatch window; Rate*Duration operations are
	// scheduled (the run itself lasts until the last one completes).
	Duration time.Duration
	// Sessions bounds the driver's concurrency: at most this many
	// operations execute at once, the rest queue with their intended
	// start times ticking.
	Sessions int
	// Arrival selects the inter-arrival process.
	Arrival Arrival
	// Seed makes the schedule and the operation stream reproducible.
	Seed int64
	// Workload generates the operation stream. Its Seed field is
	// overridden with the run's Seed so one knob steers both.
	Workload workload.Config
	// DrainTimeout bounds how long the run waits for queued operations
	// after the dispatch window ends; past it the run context is
	// cancelled and stragglers count as errors. Zero waits forever.
	DrainTimeout time.Duration
}

// ArrivalTimes returns the intended start offset of every operation in
// the run, relative to the run's start. The schedule is a pure function
// of (Rate, Duration, Arrival, Seed): uniform spacing is seed-independent
// and Poisson gaps come from a seeded exponential source, so identical
// configurations always produce identical schedules.
func (c OpenLoop) ArrivalTimes() []time.Duration {
	n := int(c.Rate * c.Duration.Seconds())
	if n < 1 {
		n = 1
	}
	times := make([]time.Duration, n)
	if c.Arrival == ArrivalPoisson {
		rng := rand.New(rand.NewSource(c.Seed))
		var t float64 // seconds since start
		for i := range times {
			t += rng.ExpFloat64() / c.Rate
			times[i] = time.Duration(t * float64(time.Second))
		}
		return times
	}
	for i := range times {
		times[i] = time.Duration(float64(i) / c.Rate * float64(time.Second))
	}
	return times
}

// Ops returns the run's deterministic operation stream, one per scheduled
// arrival.
func (c OpenLoop) Ops() []workload.Op {
	wcfg := c.Workload
	wcfg.Seed = c.Seed
	gen := workload.New(wcfg)
	ops := make([]workload.Op, len(c.ArrivalTimes()))
	for i := range ops {
		ops[i] = gen.Next()
	}
	return ops
}

// OpenLoopResult summarizes one fixed-rate run.
type OpenLoopResult struct {
	// Offered is the configured arrival rate (ops/s).
	Offered float64
	// Issued counts operations dispatched (the full schedule unless the
	// context was cancelled mid-run).
	Issued int
	// Errors counts operations whose do callback returned an error.
	Errors int
	// Elapsed spans run start to last completion — at least Duration, and
	// longer whenever the cluster could not keep up with the offered rate.
	Elapsed time.Duration
	// Achieved is Issued/Elapsed (ops/s): below Offered means saturation.
	Achieved float64
	// Latency is the intended-start latency distribution: completion time
	// minus scheduled arrival time, queueing delay included.
	Latency metrics.HistSnapshot
}

// Run executes the open-loop schedule against the do callback. A
// dispatcher goroutine releases each operation at its intended time (or
// immediately, if dispatch itself fell behind — the intended stamp still
// carries the schedule); Sessions worker goroutines execute them. The
// recorded latency of every operation is time.Since(intended start), so
// operations that queued behind a saturated or stalled cluster show their
// full sojourn time — the coordinated-omission-safe measurement.
func (c OpenLoop) Run(ctx context.Context, do func(ctx context.Context, op workload.Op) error) (*OpenLoopResult, error) {
	if c.Rate <= 0 {
		return nil, fmt.Errorf("openloop: rate must be positive, got %v", c.Rate)
	}
	sessions := c.Sessions
	if sessions <= 0 {
		sessions = 1
	}
	times := c.ArrivalTimes()
	ops := c.Ops()

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	type job struct {
		op       workload.Op
		intended time.Time
	}
	queue := make(chan job, len(times))
	hist := &metrics.Histogram{}
	var errs atomic.Int64
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range queue {
				if err := do(runCtx, j.op); err != nil {
					errs.Add(1)
				}
				hist.Observe(time.Since(j.intended))
			}
		}()
	}

	start := time.Now()
	issued := 0
dispatch:
	for i, t := range times {
		intended := start.Add(t)
		if d := time.Until(intended); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				break dispatch
			}
		} else if ctx.Err() != nil {
			break dispatch
		}
		queue <- job{op: ops[i], intended: intended}
		issued++
	}
	close(queue)

	// Bound the drain: an overloaded cluster still owes len(queue) ops.
	var drainTimer *time.Timer
	if c.DrainTimeout > 0 {
		drainTimer = time.AfterFunc(c.DrainTimeout, cancel)
	}
	wg.Wait()
	if drainTimer != nil {
		drainTimer.Stop()
	}
	elapsed := time.Since(start)

	res := &OpenLoopResult{
		Offered: c.Rate,
		Issued:  issued,
		Errors:  int(errs.Load()),
		Elapsed: elapsed,
		Latency: hist.Snapshot(),
	}
	if elapsed > 0 {
		res.Achieved = float64(issued) / elapsed.Seconds()
	}
	return res, ctx.Err()
}
