package bench

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"testing"

	"securestore/internal/cryptoutil"
	"securestore/internal/sessionctx"
	"securestore/internal/timestamp"
	"securestore/internal/wire"
)

// benchWrite builds a representative signed write: a short value, a
// two-entry writer context, and a real Ed25519 signature — the message
// the store forwards between clients, servers, and gossip peers on every
// data operation.
func benchWrite(seed string) *wire.SignedWrite {
	key := cryptoutil.DeterministicKeyPair("t4writer", seed)
	value := []byte("benchmark value")
	w := &wire.SignedWrite{
		Group: "bench",
		Item:  "item-0-0",
		Stamp: timestamp.Stamp{Time: 7, Writer: key.ID, Digest: cryptoutil.Digest(value)},
		Value: value,
		WriterCtx: sessionctx.Vector{
			"item-0-0": {Time: 7},
			"item-0-1": {Time: 3},
		},
	}
	w.Sign(key, nil)
	return w
}

// codecBench is one encode/decode microbenchmark subject.
type codecBench struct {
	name string
	req  wire.Request
}

// runBinaryRoundTrip benchmarks one binary-codec encode+decode round trip
// of req, returning the measured result and the message's wire size.
func runBinaryRoundTrip(req wire.Request) (testing.BenchmarkResult, int, error) {
	probe, err := wire.AppendRequest(nil, req)
	if err != nil {
		return testing.BenchmarkResult{}, 0, err
	}
	if _, err := wire.DecodeRequest(probe); err != nil {
		return testing.BenchmarkResult{}, 0, err
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf := wire.NewBuffer()
			enc, err := wire.AppendRequest(buf.B, req)
			if err != nil {
				b.Fatal(err)
			}
			buf.B = enc
			if _, err := wire.DecodeRequest(enc); err != nil {
				b.Fatal(err)
			}
			buf.Release()
		}
	})
	return res, len(probe), nil
}

// countingBuf is a bytes.Buffer that also tallies cumulative bytes
// written, so steady-state gob message sizes can be measured even though
// the decoder drains the buffer as it reads.
type countingBuf struct {
	bytes.Buffer
	total int
}

func (c *countingBuf) Write(p []byte) (int, error) {
	c.total += len(p)
	return c.Buffer.Write(p)
}

// runGobRoundTrip benchmarks the same round trip through encoding/gob,
// reusing one encoder/decoder stream pair exactly as the gob transport
// does (stream reuse amortizes gob's type descriptors — a fresh pair per
// message would bias the comparison against gob). The reported wire size
// is the steady-state per-message size, descriptors excluded.
func runGobRoundTrip(req wire.Request) (testing.BenchmarkResult, int, error) {
	wire.RegisterGob()
	type box struct{ Req wire.Request }
	var stream countingBuf
	enc := gob.NewEncoder(&stream)
	dec := gob.NewDecoder(&stream)
	var out box
	// First message carries gob's one-time type descriptors; the second
	// is the steady-state size the transport actually pays per frame.
	if err := enc.Encode(box{Req: req}); err != nil {
		return testing.BenchmarkResult{}, 0, err
	}
	if err := dec.Decode(&out); err != nil {
		return testing.BenchmarkResult{}, 0, err
	}
	before := stream.total
	if err := enc.Encode(box{Req: req}); err != nil {
		return testing.BenchmarkResult{}, 0, err
	}
	steady := stream.total - before
	if err := dec.Decode(&out); err != nil {
		return testing.BenchmarkResult{}, 0, err
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := enc.Encode(box{Req: req}); err != nil {
				b.Fatal(err)
			}
			if err := dec.Decode(&out); err != nil {
				b.Fatal(err)
			}
		}
	})
	return res, steady, nil
}

// T4CodecComparison measures what replacing gob with the hand-rolled
// binary codec buys. The microbenchmark rows time one encode+decode round
// trip of each message in-process (no sockets), reporting allocation and
// wire-size costs per codec; the throughput rows rerun the T3 loopback
// saturation workload (8 concurrent sessions, write+read pairs, n=4
// replicas) over real TCP with each codec end to end.
func T4CodecComparison(opts Options) (*Table, error) {
	t := &Table{
		ID:     "T4",
		Title:  "wire codec: hand-rolled binary vs encoding/gob (round-trip microbenchmarks + loopback saturation)",
		Header: []string{"benchmark", "codec", "ns/op", "B/op", "allocs/op", "wire bytes", "ops/s"},
		Notes: []string{
			"round trip = encode + decode of one request message, in-process",
			"gob rows reuse one encoder/decoder stream (steady state, type descriptors amortized) as the gob transport does",
			"binary decode of a signed write primes its signing memo: verification reuses the received bytes instead of re-deriving them",
			"ops/s rows = T3 workload (8 sessions x write+read pairs, n=4 replicas, loopback TCP, 0 delay) with the codec applied end to end",
		},
	}

	w := benchWrite(opts.seed())
	batch := pick(opts, 64, 8)
	writes := make([]*wire.SignedWrite, batch)
	for i := range writes {
		writes[i] = w
	}
	subjects := []codecBench{
		{"SignedWrite round-trip", wire.WriteReq{Write: w}},
		{fmt.Sprintf("GossipPush round-trip (%d writes)", batch), wire.GossipPushReq{From: "s00", Writes: writes}},
	}

	for _, sub := range subjects {
		bin, binBytes, err := runBinaryRoundTrip(sub.req)
		if err != nil {
			return nil, err
		}
		gb, gobBytes, err := runGobRoundTrip(sub.req)
		if err != nil {
			return nil, err
		}
		t.AddRow(sub.name, "binary", bin.NsPerOp(), bin.AllocedBytesPerOp(), bin.AllocsPerOp(), binBytes, "-")
		t.AddRow(sub.name, "gob", gb.NsPerOp(), gb.AllocedBytesPerOp(), gb.AllocsPerOp(), gobBytes, "-")
	}

	sessions := pick(opts, 8, 4)
	opsEach := pick(opts, 25, 6)
	for _, gobCodec := range []bool{false, true} {
		env, err := newTCPStoreEnv(opts.seed(), 0, nil, &envParams{gob: gobCodec})
		if err != nil {
			return nil, err
		}
		ops, err := runTCPSessions(env, sessions, opsEach)
		env.Close()
		if err != nil {
			return nil, err
		}
		codec := "binary"
		if gobCodec {
			codec = "gob"
		}
		t.AddRow(fmt.Sprintf("loopback saturation (%d sessions)", sessions), codec, "-", "-", "-", "-", fmt.Sprintf("%.0f", ops))
	}
	return t, nil
}
