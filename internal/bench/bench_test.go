package bench

import (
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every experiment in quick mode and checks
// the resulting tables are structurally sound.
func TestAllExperimentsQuick(t *testing.T) {
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			t.Parallel()
			table, err := exp.Run(Options{Quick: true, Seed: "test-" + exp.ID})
			if err != nil {
				t.Fatalf("%s: %v", exp.ID, err)
			}
			if len(table.Rows) == 0 {
				t.Fatalf("%s: no rows", exp.ID)
			}
			for i, row := range table.Rows {
				if len(row) != len(table.Header) {
					t.Fatalf("%s row %d: %d cells, header has %d", exp.ID, i, len(row), len(table.Header))
				}
			}
			if out := table.Format(); !strings.Contains(out, table.ID) {
				t.Fatalf("%s: Format missing table ID", exp.ID)
			}
		})
	}
}

// TestE1FormulasHold asserts the measured context costs equal the paper's
// formula exactly in the failure-free case.
func TestE1FormulasHold(t *testing.T) {
	table, err := E1ContextQuorum(Options{Quick: true, Seed: "e1-check"})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range table.Rows {
		formula, measured := row[3], row[4]
		if formula != measured {
			t.Errorf("n=%s b=%s: context msgs formula %s != measured %s", row[0], row[1], formula, measured)
		}
	}
}

// TestE2FormulasHold asserts write message counts match 2(b+1) and reads
// match the per-mode formulas in the disseminated case.
func TestE2FormulasHold(t *testing.T) {
	table, err := E2DataOpMessages(Options{Quick: true, Seed: "e2-check"})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range table.Rows {
		if row[3] != row[4] {
			t.Errorf("b=%s mode=%s: write formula %s != measured %s", row[0], row[2], row[3], row[4])
		}
		if row[5] != row[6] {
			t.Errorf("b=%s mode=%s: read formula %s != measured %s", row[0], row[2], row[5], row[6])
		}
	}
}

// TestE7SafetyNeverViolated asserts zero staleness/integrity violations in
// every fault row — the client-enforced-consistency safety argument.
func TestE7SafetyNeverViolated(t *testing.T) {
	table, err := E7FaultTolerance(Options{Quick: true, Seed: "e7-check"})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range table.Rows {
		if row[4] != "0" || row[5] != "0" {
			t.Errorf("mode=%s count=%s: violations stale=%s integrity=%s", row[0], row[1], row[4], row[5])
		}
		// Within the fault bound, availability must be total.
		if count, _ := strconv.Atoi(row[1]); count <= 2 {
			if row[3] != "100" {
				t.Errorf("mode=%s count=%s: ok%%=%s, want 100 within bound", row[0], row[1], row[3])
			}
		}
	}
}

// TestA1GatingBlocksDoS asserts the ablation shows the attack blunted with
// gating on and successful with gating off.
func TestA1GatingBlocksDoS(t *testing.T) {
	table, err := A1CausalGating(Options{Quick: true, Seed: "a1-check"})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(table.Rows))
	}
	on, off := table.Rows[0], table.Rows[1]
	if on[0] != "true" {
		on, off = off, on
	}
	if on[2] != "ok" || on[3] != "false" {
		t.Errorf("gating on: dep read %q poisoned %q; want ok/false", on[2], on[3])
	}
	if off[2] == "ok" || off[3] != "true" {
		t.Errorf("gating off: dep read %q poisoned %q; want FAILS/true", off[2], off[3])
	}
}

// TestA2LogDepthMatters asserts depth-1 logs lose the overwritten value
// while deeper logs keep the read available.
func TestA2LogDepthMatters(t *testing.T) {
	table, err := A2WriteLog(Options{Quick: true, Seed: "a2-check"})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range table.Rows {
		depth, _ := strconv.Atoi(row[0])
		if depth == 1 && row[1] == "ok" {
			t.Errorf("depth 1: read unexpectedly succeeded with %q", row[2])
		}
		if depth >= 2 && row[1] != "ok" {
			t.Errorf("depth %d: read failed: %s", depth, row[1])
		}
	}
}
