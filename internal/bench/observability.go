package bench

import (
	"fmt"
	"sort"
	"time"

	"securestore/internal/metrics"
	"securestore/internal/trace"
)

// benchObs is the observability bundle an instrumented benchmark run
// carries. The wiring mirrors a real deployment: every process owns its
// own tracer and histogram set (sharing one tracer across five logical
// processes would serialize them on a single ring mutex no deployment
// has), and the client's histogram set also receives the TCP caller's
// transport.rpc round trips, exactly as securestored wires it. A nil
// *benchObs leaves the environment uninstrumented.
type benchObs struct {
	tracer *trace.Tracer         // the measured client's tracer
	hist   *metrics.HistogramSet // the measured client's histograms
}

func newBenchObs() *benchObs {
	hist := &metrics.HistogramSet{}
	return &benchObs{tracer: trace.New(0, trace.WithHistograms(hist)), hist: hist}
}

// serverTracer mints a fresh per-replica tracer (with its own histogram
// set, like a separate securestored process), nil when uninstrumented.
func (o *benchObs) serverTracer() *trace.Tracer {
	if o == nil {
		return nil
	}
	return trace.New(0, trace.WithHistograms(&metrics.HistogramSet{}))
}

// clientTracer returns the measured client's tracer, nil when
// uninstrumented.
func (o *benchObs) clientTracer() *trace.Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// msHist renders a histogram duration in milliseconds for a table cell.
func msHist(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
}

// O1ObsOverhead measures what the always-on instrumentation costs on the
// store's hottest real path — the T1 loopback-TCP deployment — and shows
// the latency percentiles that instrumentation buys. Each configuration
// runs the same write+read workload with tracing fully off (nil tracers,
// no histograms: the pre-observability build) and fully on (client, server
// and gossip-free transport wiring identical to securestored's), reporting
// the throughput delta. The claim defended in EXPERIMENTS.md O1 is that
// the overhead stays under 3%, which is why securestored leaves
// instrumentation permanently enabled instead of gating it behind a flag.
func O1ObsOverhead(opts Options) (*Table, error) {
	t := &Table{
		ID:    "O1",
		Title: "observability: instrumentation overhead + latency percentiles (n=4, b=1, loopback TCP)",
		Header: []string{"sessions", "plain ops/s", "instrumented ops/s", "overhead",
			"msgs/op", "read p50 ms", "read p95 ms", "read p99 ms"},
		Notes: []string{
			"instrumented = client+server span tracing, span-fed histograms, transport round-trip histograms (securestored's wiring)",
			"configs alternate in ~100ms windows; every instrumented window is sandwiched between two plain ones and overhead = median of 1 - instr/mean(flanking plains), which cancels linear machine drift; ops/s = per-config medians",
			"percentiles come from the instrumented run's data.read histogram (full two-phase client read)",
			"msgs/op uses metrics.Snapshot.Delta over the run window",
		},
	}
	sessionCounts := pick(opts, []int{1, 8}, []int{2})
	// Many short interleaved pairs beat few long ones on a shared machine:
	// slowdowns (noisy neighbors, cgroup throttling, GC cycles) drift on a
	// multi-second timescale, so a ~100ms pair sees the same conditions in
	// both halves and its ratio cancels them, while the per-pair noise
	// that remains is near-independent across pairs and the median over
	// dozens of pairs converges to well under the effect being measured.
	reps := pick(opts, 60, 1)

	for _, sessions := range sessionCounts {
		// Keep total operations per measurement constant across session
		// counts so every sample covers a comparable wall-clock window
		// (~100ms, see the rep-count comment above).
		opsEach := pick(opts, 512, 8) / (2 * sessions)
		totalOps := 2 * sessions * opsEach

		// Both configurations run against long-lived deployments, like
		// securestored: connection pools and trace rings are warm, and
		// measurement windows contain only steady-state work.
		plainEnv, err := newTCPStoreEnv(opts.seed(), 0, nil, nil)
		if err != nil {
			return nil, err
		}
		obs := newBenchObs()
		instrEnv, err := newTCPStoreEnv(opts.seed(), 0, obs, nil)
		if err != nil {
			plainEnv.Close()
			return nil, err
		}

		runOnce := func(env *tcpStoreEnv) (float64, metrics.Snapshot, error) {
			before := env.M.Snapshot()
			ops, err := runTCPSessions(env, sessions, opsEach)
			return ops, env.M.Snapshot().Delta(before), err
		}

		var plains, instrs, ratios []float64
		msgsPerOp := "n/a"

		// Measure in a continuously alternating plain/instrumented sequence
		// and sandwich every instrumented window between two plain ones:
		// ratio_r = instr_r / mean(plain_r, plain_r+1). Machine drift
		// (thermal, neighbors, GC warmup) moves on a multi-second timescale,
		// so across one ~300ms sandwich it is close to linear — and a
		// linear trend cancels exactly in the two-sided mean, where a
		// simple adjacent pair would alias half of it into the ratio. One
		// window of each configuration runs first as warmup and is
		// discarded.
		var prevPlain float64
		warmup := func() error {
			// One discarded window per environment (connection setup, ring
			// and allocator warmup), then the opening plain flank.
			if _, _, err := runOnce(instrEnv); err != nil {
				return err
			}
			if _, _, err := runOnce(plainEnv); err != nil {
				return err
			}
			var err error
			prevPlain, _, err = runOnce(plainEnv)
			return err
		}
		if err := warmup(); err != nil {
			plainEnv.Close()
			instrEnv.Close()
			return nil, err
		}
		for r := 0; r < reps; r++ {
			instrumented, delta, err := runOnce(instrEnv)
			var plain float64
			if err == nil {
				plain, _, err = runOnce(plainEnv)
			}
			if err != nil {
				plainEnv.Close()
				instrEnv.Close()
				return nil, err
			}
			plains = append(plains, plain)
			instrs = append(instrs, instrumented)
			ratios = append(ratios, instrumented*2/(prevPlain+plain))
			prevPlain = plain
			msgsPerOp = perOp(delta.MessagesSent, totalOps)
		}
		readSnap := obs.hist.Get("data.read").Snapshot()
		plainEnv.Close()
		instrEnv.Close()

		overhead := fmt.Sprintf("%+.1f%%", 100*(1-median(ratios)))
		t.AddRow(sessions, fmt.Sprintf("%.0f", median(plains)), fmt.Sprintf("%.0f", median(instrs)),
			overhead, msgsPerOp, msHist(readSnap.P50), msHist(readSnap.P95), msHist(readSnap.P99))
	}
	return t, nil
}

// median returns the middle value of xs (mean of the middle two for even
// lengths), zero for an empty slice.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
