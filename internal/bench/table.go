package bench

// table.go implements the Table type experiments return and its text/JSON
// rendering (see doc.go for the package overview).

import (
	"fmt"
	"strings"
)

// Table is one experiment's result: a titled grid of rows.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row, stringifying each cell.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, fmt.Sprintf("%.2f", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.Rows = append(t.Rows, row)
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)

	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}

	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, note := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", note)
	}
	return b.String()
}
