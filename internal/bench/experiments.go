package bench

import (
	"context"
	"fmt"
	"time"

	"securestore/internal/quorum"
	"securestore/internal/simnet"
)

// E1ContextQuorum reproduces Section 6's quorum-size and message-count
// claims for context operations: the secure store exchanges
// 2·⌈(n+b+1)/2⌉ messages per context read/write, while masking quorums
// need ⌈(n+2b+1)/2⌉ servers per operation and the state-machine approach
// needs O(n²) messages.
func E1ContextQuorum(opts Options) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "context-operation quorum sizes and message costs vs (n, b)",
		Header: []string{"n", "b", "ctx quorum", "ctx msgs (formula)", "ctx msgs (measured)",
			"masking b", "masking quorum", "masking msgs (measured)", "pbft n", "pbft msgs/op (measured)"},
		Notes: []string{
			"ctx msgs formula: 2*ceil((n+b+1)/2) per Figure 1 / Section 6",
			"masking uses b'=min(b,(n-1)/4) since masking quorums need n>=4b+1 to stay live",
			"pbft runs its own n=3b+1 replicas; message count includes all replica-to-replica traffic",
		},
	}

	configs := pick(opts,
		[][2]int{{4, 1}, {7, 2}, {10, 3}, {13, 4}, {16, 5}},
		[][2]int{{4, 1}, {7, 2}})

	ctx := context.Background()
	for _, nb := range configs {
		n, b := nb[0], nb[1]

		// Secure store: measure one context write (disconnect).
		env, err := newStoreEnv(n, b, simnet.Instant, mrcGroup(), "alice", opts.seed())
		if err != nil {
			return nil, fmt.Errorf("E1 store n=%d b=%d: %w", n, b, err)
		}
		if _, err := env.Client.Write(ctx, "x", []byte("v")); err != nil {
			env.Close()
			return nil, err
		}
		env.M.Reset()
		if err := env.Client.Disconnect(ctx); err != nil {
			env.Close()
			return nil, err
		}
		ctxMsgs := env.M.MessagesSent()
		env.Close()

		// Masking baseline: one read.
		bMask := b
		if max := (n - 1) / 4; bMask > max {
			bMask = max
		}
		maskMsgs := "n/a"
		maskQ := "n/a"
		if bMask >= 1 {
			menv, err := newMaskingEnv(n, bMask, simnet.Instant, opts.seed(), false)
			if err != nil {
				return nil, fmt.Errorf("E1 masking n=%d b=%d: %w", n, bMask, err)
			}
			if _, err := menv.Client.Write(ctx, "x", []byte("v")); err != nil {
				return nil, err
			}
			menv.M.Reset()
			if _, _, err := menv.Client.Read(ctx, "x"); err != nil {
				return nil, err
			}
			maskMsgs = fmt.Sprint(menv.M.MessagesSent())
			maskQ = fmt.Sprint(quorum.MaskingQuorum(n, bMask))
		}

		// PBFT baseline with f=b: one put, fully drained.
		penv, err := newPBFTEnv(b, simnet.Instant, opts.seed())
		if err != nil {
			return nil, fmt.Errorf("E1 pbft f=%d: %w", b, err)
		}
		// Warm up one op so steady state is measured.
		if err := penv.Client.Put(ctx, "k", "w"); err != nil {
			return nil, err
		}
		time.Sleep(20 * time.Millisecond) // drain warm-up commits
		penv.M.Reset()
		if err := penv.Client.Put(ctx, "k", "v"); err != nil {
			return nil, err
		}
		penv.Cluster.Close() // wait for all protocol messages to finish
		pbftMsgs := penv.M.MessagesSent()

		t.AddRow(n, b,
			quorum.ContextQuorum(n, b),
			2*quorum.ContextQuorum(n, b),
			ctxMsgs,
			bMask, maskQ, maskMsgs,
			3*b+1, pbftMsgs)
	}
	return t, nil
}

// E2DataOpMessages reproduces the data-operation costs of Section 6: a
// write completes with b+1 servers for every consistency level, a read
// costs the same b+1 in the best (disseminated) case plus one value fetch,
// and the multi-writer protocol raises reads to 2b+1 servers.
func E2DataOpMessages(opts Options) (*Table, error) {
	t := &Table{
		ID:    "E2",
		Title: "data read/write message costs vs b (n = 3b+1)",
		Header: []string{"b", "n", "consistency",
			"write msgs (formula 2(b+1))", "write msgs (measured)",
			"read msgs (formula)", "read msgs (measured)"},
		Notes: []string{
			"single-writer read formula: 2(b+1) meta phase + 2 value fetch",
			"multi-writer read formula: 2(2b+1) log queries, no value fetch",
		},
	}
	ctx := context.Background()
	bs := pick(opts, []int{1, 2, 3, 4}, []int{1, 2})

	for _, b := range bs {
		n := 3*b + 1
		for _, mode := range []string{"MRC", "CC", "multi-writer CC"} {
			group := mrcGroup()
			switch mode {
			case "CC":
				group = ccGroup()
			case "multi-writer CC":
				group = mwGroup()
			}
			env, err := newStoreEnv(n, b, simnet.Instant, group, "alice", opts.seed())
			if err != nil {
				return nil, fmt.Errorf("E2 %s b=%d: %w", mode, b, err)
			}

			env.M.Reset()
			if _, err := env.Client.Write(ctx, "x", []byte("v1")); err != nil {
				env.Close()
				return nil, err
			}
			writeMsgs := env.M.MessagesSent()

			env.Cluster.Converge()
			env.M.Reset()
			if _, _, err := env.Client.Read(ctx, "x"); err != nil {
				env.Close()
				return nil, err
			}
			readMsgs := env.M.MessagesSent()
			env.Close()

			readFormula := 2*(b+1) + 2
			if group.MultiWriter {
				readFormula = 2 * (2*b + 1)
			}
			t.AddRow(b, n, mode, 2*(b+1), writeMsgs, readFormula, readMsgs)
		}
	}
	return t, nil
}

// E3CryptoCounts reproduces Section 6's cryptographic-cost analysis:
// context write = 1 signature + ⌈(n+b+1)/2⌉ verifications (at servers),
// context read = 1 verification in the best case, data write = 1
// signature + b+1 server verifications, data read = 1 client
// verification.
func E3CryptoCounts(opts Options) (*Table, error) {
	n, b := 7, 2
	t := &Table{
		ID:    "E3",
		Title: fmt.Sprintf("cryptographic operation counts per operation (n=%d, b=%d)", n, b),
		Header: []string{"operation", "client sigs (formula/measured)",
			"client verifies (formula/measured)", "server verifies (formula/measured)"},
		Notes: []string{
			"authorization disabled: capability tokens would add one verification per server request uniformly",
		},
	}
	ctx := context.Background()

	env, err := newStoreEnv(n, b, simnet.Instant, ccGroup(), "alice", opts.seed())
	if err != nil {
		return nil, err
	}
	defer env.Close()
	sm := env.Cluster.ServerMetrics

	// Data write.
	env.M.Reset()
	sm.Reset()
	if _, err := env.Client.Write(ctx, "x", []byte("v1")); err != nil {
		return nil, err
	}
	t.AddRow("data write",
		fmt.Sprintf("1 / %d", env.M.Signatures()),
		fmt.Sprintf("0 / %d", env.M.Verifications()),
		fmt.Sprintf("%d / %d", b+1, sm.Verifications()))

	// Data read (fully disseminated best case).
	env.Cluster.Converge()
	env.M.Reset()
	sm.Reset()
	if _, _, err := env.Client.Read(ctx, "x"); err != nil {
		return nil, err
	}
	t.AddRow("data read",
		fmt.Sprintf("0 / %d", env.M.Signatures()),
		fmt.Sprintf("1 / %d", env.M.Verifications()),
		fmt.Sprintf("0 / %d", sm.Verifications()))

	// Context write (disconnect).
	env.M.Reset()
	sm.Reset()
	if err := env.Client.Disconnect(ctx); err != nil {
		return nil, err
	}
	q := quorum.ContextQuorum(n, b)
	t.AddRow("context write",
		fmt.Sprintf("1 / %d", env.M.Signatures()),
		fmt.Sprintf("0 / %d", env.M.Verifications()),
		fmt.Sprintf("%d / %d", q, sm.Verifications()))

	// Context read (connect).
	env.M.Reset()
	sm.Reset()
	if err := env.Client.Connect(ctx); err != nil {
		return nil, err
	}
	t.AddRow("context read",
		fmt.Sprintf("0 / %d", env.M.Signatures()),
		fmt.Sprintf("1 / %d", env.M.Verifications()),
		fmt.Sprintf("0 / %d", sm.Verifications()))

	return t, nil
}

// E4GossipFreshness measures how dissemination frequency and write rate
// shape read behaviour (Section 6: "the cost of a read operation will
// depend on the dissemination protocol as well as the frequency with
// which data items are updated"; when writes are infrequent, "most reads
// will access data that has been disseminated to all servers" and cost
// the same as writes).
func E4GossipFreshness(opts Options) (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "read freshness and cost vs gossip interval and write rate (n=4, b=1, LAN)",
		Header: []string{"gossip interval", "write gap", "reads", "fresh (latest) %",
			"first-quorum hit %", "mean read ms", "mean read msgs"},
		Notes: []string{
			"fresh %: reads returning the very latest write's value",
			"first-quorum hit %: reads satisfied by the first b+1 servers without widening",
		},
	}
	ctx := context.Background()

	intervals := pick(opts,
		[]time.Duration{2 * time.Millisecond, 10 * time.Millisecond, 40 * time.Millisecond},
		[]time.Duration{2 * time.Millisecond, 20 * time.Millisecond})
	gaps := pick(opts,
		[]time.Duration{5 * time.Millisecond, 20 * time.Millisecond},
		[]time.Duration{10 * time.Millisecond})
	writes := pick(opts, 25, 8)

	for _, interval := range intervals {
		for _, gap := range gaps {
			env, err := newStoreEnvGossip(4, 1, simnet.LAN, mrcGroup(), "writer", opts.seed(), interval)
			if err != nil {
				return nil, err
			}
			reader, rm, err := env.newExtraClient("reader", true)
			if err != nil {
				env.Close()
				return nil, err
			}
			env.Cluster.StartGossip()

			var (
				fresh     int
				readTime  time.Duration
				succeeded int
			)
			for i := 0; i < writes; i++ {
				stamp, err := env.Client.Write(ctx, "feed", []byte(fmt.Sprintf("%06d", i)))
				if err != nil {
					env.Close()
					return nil, err
				}
				time.Sleep(gap)
				start := time.Now()
				_, got, err := reader.Read(ctx, "feed")
				readTime += time.Since(start)
				if err != nil {
					continue
				}
				succeeded++
				if got == stamp {
					fresh++
				}
			}
			widened := rm.Custom("read.widened")
			msgs := rm.MessagesSent()
			env.Close()

			t.AddRow(interval.String(), gap.String(), succeeded,
				fmt.Sprintf("%.0f", 100*float64(fresh)/float64(writes)),
				fmt.Sprintf("%.0f", 100*(1-float64(widened)/float64(writes))),
				msPerOp(readTime, writes),
				perOp(msgs, succeeded))
		}
	}
	return t, nil
}

// E5LatencyComparison reproduces the paper's qualitative latency ranking
// (Section 6): in wide-area settings the secure store's small quorums beat
// both masking quorums (larger quorums) and the state-machine approach
// (O(n²) messages, multiple all-to-all phases); in a LAN the differences
// shrink.
func E5LatencyComparison(opts Options) (*Table, error) {
	t := &Table{
		ID:    "E5",
		Title: "operation latency and message cost across systems and networks",
		Header: []string{"system", "network", "n", "write ms", "read ms",
			"write msgs", "read msgs"},
		Notes: []string{
			"secure store: n=4 b=1 MRC single-writer, fully disseminated reads",
			"masking: n=5 b=1 (needs n>=4b+1); pbft: f=1 n=4, msgs counted across all parties",
			"WAN one-way delays are scaled down ~5x; ratios between systems are what matters",
		},
	}
	ctx := context.Background()
	ops := pick(opts, 8, 3)

	profiles := []struct {
		name string
		p    simnet.Profile
	}{
		{"LAN", simnet.LAN},
		{"WAN", simnet.WAN},
	}

	for _, prof := range profiles {
		// Secure store.
		env, err := newStoreEnv(4, 1, prof.p, mrcGroup(), "alice", opts.seed())
		if err != nil {
			return nil, err
		}
		var wTime, rTime time.Duration
		var wMsgs, rMsgs int64
		for i := 0; i < ops; i++ {
			env.M.Reset()
			start := time.Now()
			if _, err := env.Client.Write(ctx, "x", []byte(fmt.Sprintf("%06d", i))); err != nil {
				env.Close()
				return nil, err
			}
			wTime += time.Since(start)
			wMsgs += env.M.MessagesSent()

			env.Cluster.Converge()
			env.M.Reset()
			start = time.Now()
			if _, _, err := env.Client.Read(ctx, "x"); err != nil {
				env.Close()
				return nil, err
			}
			rTime += time.Since(start)
			rMsgs += env.M.MessagesSent()
		}
		env.Close()
		t.AddRow("secure store", prof.name, 4, msPerOp(wTime, ops), msPerOp(rTime, ops),
			perOp(wMsgs, ops), perOp(rMsgs, ops))

		// Masking quorums.
		menv, err := newMaskingEnv(5, 1, prof.p, opts.seed(), false)
		if err != nil {
			return nil, err
		}
		wTime, rTime, wMsgs, rMsgs = 0, 0, 0, 0
		for i := 0; i < ops; i++ {
			menv.M.Reset()
			start := time.Now()
			if _, err := menv.Client.Write(ctx, "x", []byte(fmt.Sprintf("%06d", i))); err != nil {
				return nil, err
			}
			wTime += time.Since(start)
			wMsgs += menv.M.MessagesSent()

			menv.M.Reset()
			start = time.Now()
			if _, _, err := menv.Client.Read(ctx, "x"); err != nil {
				return nil, err
			}
			rTime += time.Since(start)
			rMsgs += menv.M.MessagesSent()
		}
		t.AddRow("masking quorum", prof.name, 5, msPerOp(wTime, ops), msPerOp(rTime, ops),
			perOp(wMsgs, ops), perOp(rMsgs, ops))

		// PBFT state machine.
		penv, err := newPBFTEnv(1, prof.p, opts.seed())
		if err != nil {
			return nil, err
		}
		wTime, rTime = 0, 0
		var totalMsgs int64
		for i := 0; i < ops; i++ {
			start := time.Now()
			if err := penv.Client.Put(ctx, "x", fmt.Sprintf("%06d", i)); err != nil {
				return nil, err
			}
			wTime += time.Since(start)
			start = time.Now()
			if _, err := penv.Client.Get(ctx, "x"); err != nil {
				return nil, err
			}
			rTime += time.Since(start)
		}
		penv.Cluster.Close()
		totalMsgs = penv.M.MessagesSent()
		t.AddRow("pbft state machine", prof.name, 4, msPerOp(wTime, ops), msPerOp(rTime, ops),
			perOp(totalMsgs, 2*ops), perOp(totalMsgs, 2*ops))
	}
	return t, nil
}
