package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"securestore/internal/client"
	"securestore/internal/cryptoutil"
	"securestore/internal/metrics"
	"securestore/internal/server"
	"securestore/internal/sharding"
	"securestore/internal/transport"
	"securestore/internal/wire"
	"securestore/internal/workload"
)

// commitGate models each replica's serialized commit device (the paper's
// deployment logs to disk): write requests acquire the replica's gate for
// a fixed service time, one at a time, before the replica processes them.
// Reads bypass the gate. Sleeping holds no CPU, so on any host — including
// a single-core one — the gate is an honest per-replica throughput ceiling
// of 1/delay writes per second that sharding multiplies by adding replica
// groups, while CPU-bound work stays shared. T5's notes state this model
// explicitly.
type commitGate struct {
	inner transport.Handler
	delay time.Duration
	mu    sync.Mutex
}

func (h *commitGate) ServeRequest(ctx context.Context, from string, req wire.Request) (wire.Response, error) {
	if h.delay > 0 {
		if _, ok := req.(wire.WriteReq); ok {
			h.mu.Lock()
			time.Sleep(h.delay)
			h.mu.Unlock()
		}
	}
	return h.inner.ServeRequest(ctx, from, req)
}

// newShardedTCPEnv assembles groups × (n=4, b=1) replicas over loopback
// TCP — each group an independent server set with its own quorum state —
// behind per-replica commit gates, plus one routed client holding the
// signed shard table. groups == 1 is the unsharded baseline in the same
// harness (one group, same gates, same table-routed client), so T5's
// speedups isolate exactly what adding groups buys.
func newShardedTCPEnv(seed string, groups int, commitDelay time.Duration) (*tcpStoreEnv, error) {
	wire.RegisterGob()
	const n, b = 4, 1
	ring := cryptoutil.NewKeyring()
	ring.EnableVerifyCache(4096)
	env := &tcpStoreEnv{M: &metrics.Counters{}, SrvM: &metrics.Counters{}}

	table := &sharding.Table{Version: 1}
	for g := 0; g < groups; g++ {
		shard := sharding.Shard{Name: fmt.Sprintf("g%02d", g)}
		for i := 0; i < n; i++ {
			shard.Servers = append(shard.Servers, fmt.Sprintf("g%02d-s%02d", g, i))
		}
		table.Shards = append(table.Shards, shard)
	}
	admin := cryptoutil.DeterministicKeyPair("shardadmin", seed)
	ring.MustRegister(admin.ID, admin.Public)
	table.Sign(admin, env.SrvM)

	addrs := make(map[string]string, groups*n)
	for _, shard := range table.Shards {
		shardName := shard.Name
		for _, name := range shard.Servers {
			key := cryptoutil.DeterministicKeyPair(name, seed)
			ring.MustRegister(key.ID, key.Public)
			srv := server.New(server.Config{
				ID: name, Ring: ring, Metrics: env.SrvM,
				Shard: shardName,
				Owns:  func(item string) bool { return table.Owns(shardName, item) },
			})
			srv.RegisterGroup("bench", server.Policy{Consistency: wire.MRC})
			tcp := transport.NewTCPServer(
				&commitGate{inner: srv, delay: commitDelay},
				transport.WithServerCounters(env.SrvM),
			)
			addr, err := tcp.Serve("127.0.0.1:0")
			if err != nil {
				env.Close()
				return nil, err
			}
			env.tcpServers = append(env.tcpServers, tcp)
			addrs[name] = addr
		}
	}

	key := cryptoutil.DeterministicKeyPair("t5client", seed)
	ring.MustRegister(key.ID, key.Public)
	env.caller = transport.NewTCPCaller(key.ID, addrs, env.M)
	cl, err := client.New(client.Config{
		ID: key.ID, Key: key, Ring: ring, Table: table, B: b,
		Group: "bench", Consistency: wire.MRC,
		Caller: env.caller, Metrics: env.M,
		CallTimeout: 10 * time.Second, ReadRetries: 1, RetryBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		env.Close()
		return nil, err
	}
	if err := cl.Connect(context.Background()); err != nil {
		env.Close()
		return nil, err
	}
	env.Client = cl
	return env, nil
}

// runHotKeySessions drives `sessions` concurrent worker sessions through
// the shared client, each performing `opsEach` write+read pairs on items
// drawn from a hot-key workload (90% of picks on one item, the remainder
// uniform over 64 items), and returns ops/sec. All sessions hammer the
// same hot item, so whichever shard owns it becomes the whole run's
// bottleneck — the adversarial counterpart to runTCPSessions' uniform
// private items.
func runHotKeySessions(env *tcpStoreEnv, sessions, opsEach int) (float64, error) {
	ctx := context.Background()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	start := time.Now()
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			gen := workload.New(workload.Config{
				Seed: int64(1000 + s), Items: 64, ItemPrefix: "t5hot",
				HotFraction: 0.9, HotItems: 1, ValueSize: 64,
			})
			for j := 0; j < opsEach; j++ {
				op := gen.NextWrite()
				if _, err := env.Client.Write(ctx, op.Item, op.Value); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				if _, _, err := env.Client.Read(ctx, op.Item); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}(s)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	ops := 2 * sessions * opsEach
	return float64(ops) / time.Since(start).Seconds(), nil
}

// T5ShardScaling measures what sharding the keyspace across replica
// groups buys: aggregate write+read throughput against G independent
// groups of 4 replicas each, G = 1 doubling up to 8, with every replica
// behind an 8ms serialized commit gate (see commitGate — the modeled disk
// that makes per-group capacity explicit and host-independent). Uniform
// items spread across groups by the rendezvous hash and should scale
// near-linearly in G; the hot-key column concentrates 90% of traffic on
// one item, pinning the run to that item's group no matter how many
// groups exist — the canonical reason shard-aware load modeling matters.
func T5ShardScaling(opts Options) (*Table, error) {
	t := &Table{
		ID:     "T5",
		Title:  "multi-group scaling: aggregate throughput vs replica-group count (4 replicas per group, b=1, loopback sockets, 8ms commit gate)",
		Header: []string{"groups", "servers", "uniform ops/s", "speedup", "hot-key ops/s", "hot speedup"},
		Notes: []string{
			"each session performs write+read pairs; uniform = private items (rendezvous-spread), hot-key = 90% of picks on one item",
			"every replica serializes writes behind an 8ms commit gate (modeled disk), so per-group write capacity is explicit and host-independent",
			"the client routes per item through the signed shard table; groups=1 runs the identical harness unsharded",
			"expected: uniform scales ~linearly in groups; hot-key pins to the one group owning the hot item",
			"at high group counts the fixed session pool itself becomes the limit, so the curve flattens once demand no longer saturates every group",
		},
	}
	groupCounts := pick(opts, []int{1, 2, 4, 8}, []int{1, 2})
	sessions := pick(opts, 32, 8)
	opsEach := pick(opts, 15, 6)
	const commitDelay = 8 * time.Millisecond

	var baseUniform, baseHot float64
	for _, groups := range groupCounts {
		run := func(hot bool) (float64, error) {
			env, err := newShardedTCPEnv(opts.seed(), groups, commitDelay)
			if err != nil {
				return 0, err
			}
			defer env.Close()
			if hot {
				return runHotKeySessions(env, sessions, opsEach)
			}
			return runTCPSessions(env, sessions, opsEach)
		}
		uniform, err := run(false)
		if err != nil {
			return nil, err
		}
		hot, err := run(true)
		if err != nil {
			return nil, err
		}
		if groups == groupCounts[0] {
			baseUniform, baseHot = uniform, hot
		}
		t.AddRow(
			groups,
			groups*4,
			fmt.Sprintf("%.0f", uniform),
			fmt.Sprintf("%.2fx", uniform/baseUniform),
			fmt.Sprintf("%.0f", hot),
			fmt.Sprintf("%.2fx", hot/baseHot),
		)
	}
	return t, nil
}
