package bench

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"securestore/internal/server"
	"securestore/internal/simnet"
)

// E6MultiWriter reproduces Section 6's multi-writer cost deltas: the
// figures "change from b+1 to 2b+1 for the malicious clients case",
// clients stop verifying signatures on reads (servers validate instead),
// and servers pay memory for bounded write logs.
func E6MultiWriter(opts Options) (*Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "single-writer vs multi-writer (malicious clients) costs (n = 3b+1)",
		Header: []string{"b", "mode", "read servers", "read msgs", "read client verifies",
			"write msgs", "server log entries"},
		Notes: []string{
			"multi-writer reads contact 2b+1 servers and need b+1 matching replies",
			"log entries counted across all servers after 6 writes to one item",
		},
	}
	ctx := context.Background()
	bs := pick(opts, []int{1, 2, 3}, []int{1, 2})

	for _, b := range bs {
		n := 3*b + 1
		for _, mw := range []bool{false, true} {
			group := ccGroup()
			mode := "single-writer"
			if mw {
				group = mwGroup()
				mode = "multi-writer"
			}
			env, err := newStoreEnv(n, b, simnet.Instant, group, "alice", opts.seed())
			if err != nil {
				return nil, fmt.Errorf("E6 b=%d mw=%v: %w", b, mw, err)
			}

			env.M.Reset()
			if _, err := env.Client.Write(ctx, "x", []byte("v0")); err != nil {
				env.Close()
				return nil, err
			}
			writeMsgs := env.M.MessagesSent()

			for i := 1; i < 6; i++ {
				if _, err := env.Client.Write(ctx, "x", []byte(fmt.Sprintf("v%d", i))); err != nil {
					env.Close()
					return nil, err
				}
			}
			env.Cluster.Converge()

			env.M.Reset()
			if _, _, err := env.Client.Read(ctx, "x"); err != nil {
				env.Close()
				return nil, err
			}
			readMsgs := env.M.MessagesSent()
			readVerifies := env.M.Verifications()

			logEntries := 0
			for _, srv := range env.Cluster.Servers {
				_, _, l := srv.Stats()
				logEntries += l
			}
			env.Close()

			readServers := b + 1
			if mw {
				readServers = 2*b + 1
			}
			t.AddRow(b, mode, readServers, readMsgs, readVerifies, writeMsgs, logEntries)
		}
	}
	return t, nil
}

// E7FaultTolerance verifies the availability and safety claims: all
// operations succeed with up to b arbitrary faulty servers, and — because
// consistency is client-enforced over signed data — safety (monotonicity
// and integrity) holds even beyond the bound, where only availability
// degrades.
func E7FaultTolerance(opts Options) (*Table, error) {
	n, b := 7, 2
	t := &Table{
		ID:    "E7",
		Title: fmt.Sprintf("availability and safety under injected faults (n=%d, b=%d)", n, b),
		Header: []string{"fault mode", "faulty servers", "ops", "ok %",
			"staleness violations", "integrity violations"},
		Notes: []string{
			"staleness violation: a read returning an older value than a previous read (MRC breach)",
			"integrity violation: a read returning a value the writer never wrote",
			"faulty > b rows show graceful degradation: availability may drop, safety must not",
		},
	}
	ctx := context.Background()
	modes := []server.FaultMode{server.Crash, server.Stale, server.CorruptValue, server.CorruptMeta, server.Equivocate}
	counts := pick(opts, []int{0, 1, 2, 3}, []int{0, 2})
	ops := pick(opts, 12, 6)

	for _, mode := range modes {
		for _, count := range counts {
			env, err := newStoreEnv(n, b, simnet.Instant, mrcGroup(), "writer", opts.seed())
			if err != nil {
				return nil, err
			}
			reader, _, err := env.newExtraClient("reader", false)
			if err != nil {
				env.Close()
				return nil, err
			}
			// Seed one converged value so stale servers have old state to lie with.
			if _, err := env.Client.Write(ctx, "x", []byte("000000")); err != nil {
				env.Close()
				return nil, err
			}
			env.Cluster.Converge()
			env.Cluster.InjectFaults(mode, count)

			okOps, staleViol, integViol := 0, 0, 0
			lastSeen := -1
			for i := 1; i <= ops; i++ {
				val := fmt.Sprintf("%06d", i)
				if _, err := env.Client.Write(ctx, "x", []byte(val)); err != nil {
					continue
				}
				env.Cluster.Converge()
				got, _, err := reader.Read(ctx, "x")
				if err != nil {
					continue
				}
				okOps++
				seen, perr := strconv.Atoi(string(got))
				if perr != nil {
					integViol++
					continue
				}
				if seen < lastSeen {
					staleViol++
				}
				if seen > i {
					integViol++ // value from the future: fabricated
				}
				lastSeen = seen
			}
			env.Close()
			t.AddRow(mode.String(), count, ops,
				fmt.Sprintf("%.0f", 100*float64(okOps)/float64(ops)),
				staleViol, integViol)
		}
	}
	return t, nil
}

// E8ConsistencySpectrum reproduces the paper's bottom line (Sections 6-7):
// "by providing weaker consistency when appropriate, significant
// communication and computational savings can be realized." One workload,
// five systems, three cost dimensions.
func E8ConsistencySpectrum(opts Options) (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "cost vs consistency across the spectrum (LAN, 7 servers for the store)",
		Header: []string{"system", "consistency", "write ms", "read ms",
			"msgs/op", "client crypto ops/op"},
		Notes: []string{
			"store rows: n=7 b=2; masking: n=7 b=1 (needs n>=4b+1); pbft: f=2 n=7",
			"client crypto ops = signatures + verifications at the client (pbft uses MACs, counted separately)",
		},
	}
	ctx := context.Background()
	ops := pick(opts, 8, 4)

	type result struct {
		system, consistency string
		wTime, rTime        time.Duration
		msgs, crypto        int64
		opsDone             int
	}
	var results []result

	runStore := func(name string, mw bool, cc bool) error {
		group := mrcGroup()
		if cc {
			group = ccGroup()
		}
		if mw {
			group = mwGroup()
		}
		env, err := newStoreEnv(7, 2, simnet.LAN, group, "alice", opts.seed())
		if err != nil {
			return err
		}
		defer env.Close()
		res := result{system: "secure store", consistency: name}
		for i := 0; i < ops; i++ {
			env.M.Reset()
			start := time.Now()
			if _, err := env.Client.Write(ctx, "x", []byte(fmt.Sprintf("%06d", i))); err != nil {
				return err
			}
			res.wTime += time.Since(start)
			env.Cluster.Converge()
			start = time.Now()
			if _, _, err := env.Client.Read(ctx, "x"); err != nil {
				return err
			}
			res.rTime += time.Since(start)
			res.msgs += env.M.MessagesSent()
			res.crypto += env.M.Signatures() + env.M.Verifications()
			res.opsDone += 2
		}
		results = append(results, res)
		return nil
	}
	if err := runStore("MRC", false, false); err != nil {
		return nil, err
	}
	if err := runStore("CC", false, true); err != nil {
		return nil, err
	}
	if err := runStore("CC multi-writer", true, true); err != nil {
		return nil, err
	}

	// Masking quorums.
	menv, err := newMaskingEnv(7, 1, simnet.LAN, opts.seed(), false)
	if err != nil {
		return nil, err
	}
	mres := result{system: "masking quorum", consistency: "safe (strong)"}
	for i := 0; i < ops; i++ {
		menv.M.Reset()
		start := time.Now()
		if _, err := menv.Client.Write(ctx, "x", []byte(fmt.Sprintf("%06d", i))); err != nil {
			return nil, err
		}
		mres.wTime += time.Since(start)
		start = time.Now()
		if _, _, err := menv.Client.Read(ctx, "x"); err != nil {
			return nil, err
		}
		mres.rTime += time.Since(start)
		mres.msgs += menv.M.MessagesSent()
		mres.crypto += menv.M.Signatures() + menv.M.Verifications()
		mres.opsDone += 2
	}
	results = append(results, mres)

	// PBFT.
	penv, err := newPBFTEnv(2, simnet.LAN, opts.seed())
	if err != nil {
		return nil, err
	}
	pres := result{system: "pbft state machine", consistency: "linearizable"}
	for i := 0; i < ops; i++ {
		start := time.Now()
		if err := penv.Client.Put(ctx, "x", fmt.Sprintf("%06d", i)); err != nil {
			return nil, err
		}
		pres.wTime += time.Since(start)
		start = time.Now()
		if _, err := penv.Client.Get(ctx, "x"); err != nil {
			return nil, err
		}
		pres.rTime += time.Since(start)
		pres.opsDone += 2
	}
	penv.Cluster.Close()
	pres.msgs = penv.M.MessagesSent()
	pres.crypto = penv.M.Custom("mac.sign") + penv.M.Custom("mac.verify")
	results = append(results, pres)

	for _, r := range results {
		half := r.opsDone / 2
		t.AddRow(r.system, r.consistency,
			msPerOp(r.wTime, half), msPerOp(r.rTime, half),
			perOp(r.msgs, r.opsDone), perOp(r.crypto, r.opsDone))
	}
	return t, nil
}
