package bench

import "testing"

// BenchmarkTCPPlain and BenchmarkTCPInstrumented are the raw A/B pair
// behind experiment O1: the T1 loopback-TCP deployment driven by 8
// concurrent sessions with observability off and on. Compare ns/op
// directly (e.g. with benchstat) when touching the trace or metrics hot
// paths; the O1 table in EXPERIMENTS.md is the curated version.

func BenchmarkTCPPlain(b *testing.B) {
	env, err := newTCPStoreEnv("prof", 0, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	b.ResetTimer()
	if _, err := runTCPSessions(env, 8, b.N); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkTCPInstrumented(b *testing.B) {
	obs := newBenchObs()
	env, err := newTCPStoreEnv("prof", 0, obs, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	b.ResetTimer()
	if _, err := runTCPSessions(env, 8, b.N); err != nil {
		b.Fatal(err)
	}
}
