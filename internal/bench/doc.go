// Package bench runs the experiments of EXPERIMENTS.md: the measured
// reproduction of every performance claim in the paper's Section 6, the
// ablations called out in DESIGN.md, and the engineering-extension tables
// (transport T1/T2, chaos soak, observability O1). Each experiment is a
// func(Options) (*Table, error) registered in All() (ablations.go);
// cmd/benchtab prints the tables, and the root-level Go benchmarks run
// the same registry in quick mode so `go test` exercises every
// experiment end to end.
//
// Options carries the seed and the quick/full switch — pick(opts, full,
// quick) is the single idiom deciding sweep sizes, so a quick run touches
// every code path in seconds while the full run produces the committed
// numbers. Experiments build clusters either on the simulated network
// (experiments.go, experiments2.go — message counts and latency shapes)
// or over real loopback TCP (transport.go, observability.go — wall-clock
// throughput), and report costs via metrics.Snapshot deltas.
//
// Two layers sit beside the closed-loop registry:
//
//   - openloop.go is the coordinated-omission-safe driver behind
//     `benchtab remote` (experiment R1): OpenLoop generates a fixed
//     arrival schedule (uniform or Poisson, pure function of the seed),
//     dispatches each operation at its intended time regardless of how
//     the previous ones are faring, and measures latency from that
//     intended start — so queueing delay under overload shows up in the
//     histogram instead of silently throttling the load.
//   - record.go normalizes result Tables into flat (pr, experiment,
//     metric, value) records and implements the append-only merge and
//     regression gate behind cmd/benchcat and dev/bench/records.json —
//     the repo's continuous performance trajectory. See BENCHMARKS.md.
package bench
