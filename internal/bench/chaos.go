package bench

import (
	"fmt"
	"os"

	"securestore/internal/chaos"
	"securestore/internal/wire"
)

// ChaosSoak runs the deterministic fault-injection soak (internal/chaos)
// across a band of seeds and tabulates what each run survived: rotating
// Byzantine replicas, minority partitions, lossy phases, gossip stalls, a
// crash-restart through the write-ahead log and a read-only client
// attempting writes. The headline column is the checker verdict — zero
// integrity/MRC/CC/RYW violations on every seed. Failure counts are the
// cost of the faults (operations the client gave up on), not safety.
func ChaosSoak(opts Options) (*Table, error) {
	seeds := pick(opts, 20, 3)
	ops := pick(opts, 500, 120)

	t := &Table{
		ID:    "CHAOS",
		Title: fmt.Sprintf("chaos soak: %d seeds x %d ops, n=4 b=1, composed faults (see internal/chaos)", seeds, ops),
		Header: []string{"seed", "group", "ops", "wr fail", "rd fail", "fault rot",
			"partitions", "restarts", "breaches", "final fails", "violations"},
		Notes: []string{
			"every schedule is a pure function of the seed: a failing seed replays exactly",
			"even seeds run single-writer MRC, odd seeds multi-writer CC with causal gating",
			"violations counts checker verdicts over the full recorded history (must be 0)",
		},
	}

	for seed := int64(1); seed <= int64(seeds); seed++ {
		dir, err := os.MkdirTemp("", "securestore-chaos-*")
		if err != nil {
			return nil, err
		}
		cfg := chaos.Config{
			Seed:         seed,
			Ops:          ops,
			DataDir:      dir,
			CrashRestart: true,
			Mallory:      true,
		}
		label := "MRC"
		if seed%2 == 1 {
			cfg.Consistency = wire.CC
			cfg.MultiWriter = true
			label = "CC/mw"
		}
		rep, err := chaos.Run(cfg)
		os.RemoveAll(dir)
		if err != nil {
			return nil, fmt.Errorf("chaos seed %d: %w", seed, err)
		}
		t.AddRow(rep.Seed, label, rep.Ops, rep.WriteFailures, rep.ReadFailures,
			rep.FaultRotations, rep.Partitions, rep.Restarts,
			rep.AccessBreaches, rep.FinalReadFailures, len(rep.Violations))
	}
	return t, nil
}
