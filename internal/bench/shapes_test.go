package bench

import (
	"strconv"
	"testing"
)

// The tests in this file assert the *shapes* the paper predicts, parsed
// out of the experiment tables themselves — the reproduction contract of
// EXPERIMENTS.md, enforced in CI.

func cellFloat(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", cell, err)
	}
	return v
}

// TestE5MessageOrderingHolds asserts the §6 comparison on message counts:
// secure store < masking quorums < PBFT, on every network profile.
// (Latency is load-sensitive; message counts are deterministic.)
func TestE5MessageOrderingHolds(t *testing.T) {
	table, err := E5LatencyComparison(Options{Quick: true, Seed: "e5-shape"})
	if err != nil {
		t.Fatal(err)
	}
	byNet := make(map[string]map[string]float64) // network -> system -> write msgs
	for _, row := range table.Rows {
		system, network := row[0], row[1]
		if byNet[network] == nil {
			byNet[network] = make(map[string]float64)
		}
		byNet[network][system] = cellFloat(t, row[5])
	}
	for network, systems := range byNet {
		store, masking, pbft := systems["secure store"], systems["masking quorum"], systems["pbft state machine"]
		if !(store < masking && masking < pbft) {
			t.Errorf("%s: write msgs store=%.1f masking=%.1f pbft=%.1f; want strictly increasing",
				network, store, masking, pbft)
		}
	}
}

// TestE6MultiWriterShiftHolds asserts the b+1 → 2b+1 read shift and the
// elimination of client-side read verification in multi-writer mode.
func TestE6MultiWriterShiftHolds(t *testing.T) {
	table, err := E6MultiWriter(Options{Quick: true, Seed: "e6-shape"})
	if err != nil {
		t.Fatal(err)
	}
	type row struct{ readServers, verifies int }
	rows := make(map[string]map[int]row) // mode -> b -> data
	for _, r := range table.Rows {
		b, _ := strconv.Atoi(r[0])
		servers, _ := strconv.Atoi(r[2])
		verifies, _ := strconv.Atoi(r[4])
		if rows[r[1]] == nil {
			rows[r[1]] = make(map[int]row)
		}
		rows[r[1]][b] = row{readServers: servers, verifies: verifies}
	}
	for b, single := range rows["single-writer"] {
		multi, ok := rows["multi-writer"][b]
		if !ok {
			t.Fatalf("missing multi-writer row for b=%d", b)
		}
		if single.readServers != b+1 || multi.readServers != 2*b+1 {
			t.Errorf("b=%d: read servers %d/%d, want %d/%d",
				b, single.readServers, multi.readServers, b+1, 2*b+1)
		}
		if single.verifies != 1 || multi.verifies != 0 {
			t.Errorf("b=%d: client verifies %d/%d, want 1/0", b, single.verifies, multi.verifies)
		}
	}
}

// TestA3ReconstructLinearInItems asserts the exact Section 5.1 cost:
// reconstruction reads every item from every server — items × 2n messages
// (n=7 here) — while connect stays at the fixed quorum cost.
func TestA3ReconstructLinearInItems(t *testing.T) {
	table, err := A3ContextReconstruct(Options{Quick: true, Seed: "a3-shape"})
	if err != nil {
		t.Fatal(err)
	}
	const n = 7
	for _, row := range table.Rows {
		items, _ := strconv.Atoi(row[0])
		connectMsgs, _ := strconv.Atoi(row[1])
		reconMsgs, _ := strconv.Atoi(row[3])
		if connectMsgs != 10 { // 2*ceil((7+2+1)/2)
			t.Errorf("items=%d: connect msgs = %d, want 10", items, connectMsgs)
		}
		if reconMsgs != items*2*n {
			t.Errorf("items=%d: reconstruct msgs = %d, want %d", items, reconMsgs, items*2*n)
		}
	}
}

// TestA4EagerHalvesMessages asserts the eager read's message saving
// (4 vs 6 at b=1) independent of timing.
func TestA4EagerHalvesMessages(t *testing.T) {
	table, err := A4EagerRead(Options{Quick: true, Seed: "a4-shape"})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range table.Rows {
		msgs := cellFloat(t, row[3])
		switch row[0] {
		case "two-phase (paper)":
			if msgs != 6 {
				t.Errorf("%s/%s: msgs = %.1f, want 6", row[0], row[1], msgs)
			}
		case "eager single-round":
			if msgs != 4 {
				t.Errorf("%s/%s: msgs = %.1f, want 4", row[0], row[1], msgs)
			}
		}
	}
}

// TestA6DurabilityRecovers asserts the persistence row reports a real
// recovery measurement.
func TestA6DurabilityRecovers(t *testing.T) {
	table, err := A6Persistence(Options{Quick: true, Seed: "a6-shape"})
	if err != nil {
		t.Fatal(err)
	}
	var sawWAL bool
	for _, row := range table.Rows {
		if row[0] == "write-ahead log" {
			sawWAL = true
			if row[3] == "n/a" {
				t.Error("WAL row missing recovery measurement")
			}
		}
		if row[0] == "in-memory" && row[3] != "n/a" {
			t.Error("in-memory row claims a recovery measurement")
		}
	}
	if !sawWAL {
		t.Fatal("no WAL row")
	}
}
