package bench

// record.go normalizes recorded benchtab tables (BENCH_PR*.json) into
// flat scalar records — the continuous performance trajectory behind
// scripts/bench_record.sh and the `benchcat -check` regression gate.
//
// A Table is a grid of strings shaped for humans; cross-PR comparison
// needs (experiment, metric, value) triples instead. Normalization
// classifies each column by its header: columns whose header names a
// known measurement kind ("ops/s", "p99 ms", "speedup", ...) become
// metrics with a gate direction (higher- or lower-is-better), every other
// column is a dimension whose row cells key the metric, so "fine-grained
// ops/s[8]" from PR4's T3 and the same cell from PR5's re-run land on the
// same metric name and become comparable points on one curve.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Record is one scalar measurement extracted from a recorded table: a
// point on the repository's performance trajectory.
type Record struct {
	// PR is the pull request the measurement was recorded under.
	PR int `json:"pr"`
	// Source is the artifact file the measurement came from.
	Source string `json:"source"`
	// Commit and Date stamp the recording when known (bench_record.sh
	// fills them from git for newly appended runs; records merged from an
	// existing file keep their original stamps).
	Commit string `json:"commit,omitempty"`
	Date   string `json:"date,omitempty"`
	// Experiment is the table ID (T3, R1, ...).
	Experiment string `json:"experiment"`
	// Metric is the measure column's header plus the row's dimension key,
	// e.g. "fine-grained ops/s[8]".
	Metric string `json:"metric"`
	// Value is the parsed measurement (units stripped).
	Value float64 `json:"value"`
	// Unit is the measurement's unit when the header implies one.
	Unit string `json:"unit,omitempty"`
	// Better is the gate direction: "higher", "lower", or "" for metrics
	// that are tracked but not gated.
	Better string `json:"better,omitempty"`
}

// measureClasses maps header substrings to a gate direction and unit.
// Scan order matters: more specific tokens come first ("msgs" before
// "ms", "ns/op" before "ops"). Headers matching no class are dimensions.
var measureClasses = []struct{ token, better, unit string }{
	{"ns/op", "lower", "ns"},
	{"b/op", "lower", "B"},
	{"mb/s", "higher", "MB/s"},
	{"ops/s", "higher", "ops/s"},
	{"speedup", "higher", "x"},
	{"hit rate", "higher", "%"},
	{"fresh", "higher", "%"},
	{"ok %", "higher", "%"},
	{"overhead", "lower", "%"},
	{"allocs", "lower", "allocs"},
	{"msgs", "lower", "msgs"},
	{"ms", "lower", "ms"},
	{"bytes", "lower", "B"},
	{"kb", "lower", "KB"},
	{"verifies", "lower", ""},
	{"violations", "lower", ""},
	{"errors", "lower", ""},
	{"fail", "lower", ""},
	{"breaches", "lower", ""},
	{"rounds", "lower", "rounds"},
	{"hits", "higher", ""},
	{"hedge", "lower", ""},
	{"batch mean", "", ""},
}

// classifyHeader returns whether a column header names a measure, and if
// so its gate direction and unit.
func classifyHeader(h string) (isMeasure bool, better, unit string) {
	l := strings.ToLower(h)
	for _, c := range measureClasses {
		if strings.Contains(l, c.token) {
			return true, c.better, c.unit
		}
	}
	return false, "", ""
}

// parseMeasure parses one measure cell, stripping the decorating suffixes
// tables use ("2.53x", "93%"). Placeholder cells ("n/a", "-", empty) and
// anything non-numeric report ok=false and are skipped, which is what
// lets partially filled tables normalize.
func parseMeasure(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	switch s {
	case "", "-", "n/a":
		return 0, false
	}
	s = strings.TrimSuffix(s, "%")
	s = strings.TrimSuffix(s, "x")
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// NormalizeTables flattens one recording's tables into records. source
// and pr identify the artifact; commit and date stamp the records when
// known (pass "" when not).
func NormalizeTables(source string, pr int, commit, date string, tables []Table) []Record {
	var recs []Record
	for _, t := range tables {
		type measure struct {
			col    int
			better string
			unit   string
		}
		var dims []int
		var measures []measure
		for j, h := range t.Header {
			if ok, better, unit := classifyHeader(h); ok {
				measures = append(measures, measure{j, better, unit})
			} else {
				dims = append(dims, j)
			}
		}
		for _, row := range t.Rows {
			var key []string
			for _, j := range dims {
				if j < len(row) {
					key = append(key, strings.TrimSpace(row[j]))
				}
			}
			for _, m := range measures {
				if m.col >= len(row) {
					continue
				}
				v, ok := parseMeasure(row[m.col])
				if !ok {
					continue
				}
				name := t.Header[m.col]
				if len(key) > 0 {
					name += "[" + strings.Join(key, "/") + "]"
				}
				recs = append(recs, Record{
					PR: pr, Source: source, Commit: commit, Date: date,
					Experiment: t.ID, Metric: name, Value: v,
					Unit: m.unit, Better: m.better,
				})
			}
		}
		recs = append(recs, kneeRecords(source, pr, commit, date, t, dims)...)
	}
	return recs
}

// kneeRecords derives a "knee ops/s" metric for rate-sweep tables (those
// with both an offered and an achieved ops/s column): the highest
// achieved throughput across a dimension group's rows. Without it the
// sweep's rows all map to the same metric names — "offered ops/s" is a
// measure, not a dimension — and MergeRecords keeps only the first
// (lowest-rate) row, so the saturation point the sweep exists to find
// never reaches the trajectory or the regression gate.
func kneeRecords(source string, pr int, commit, date string, t Table, dims []int) []Record {
	offered, achieved := -1, -1
	for j, h := range t.Header {
		l := strings.ToLower(h)
		if !strings.Contains(l, "ops/s") {
			continue
		}
		if strings.Contains(l, "offered") {
			offered = j
		}
		if strings.Contains(l, "achieved") {
			achieved = j
		}
	}
	if offered < 0 || achieved < 0 {
		return nil
	}
	knee := make(map[string]float64)
	var order []string
	for _, row := range t.Rows {
		if achieved >= len(row) {
			continue
		}
		v, ok := parseMeasure(row[achieved])
		if !ok {
			continue
		}
		var key []string
		for _, j := range dims {
			if j < len(row) {
				key = append(key, strings.TrimSpace(row[j]))
			}
		}
		k := strings.Join(key, "/")
		if _, seen := knee[k]; !seen {
			order = append(order, k)
		}
		if v > knee[k] {
			knee[k] = v
		}
	}
	var recs []Record
	for _, k := range order {
		name := "knee ops/s"
		if k != "" {
			name += "[" + k + "]"
		}
		recs = append(recs, Record{
			PR: pr, Source: source, Commit: commit, Date: date,
			Experiment: t.ID, Metric: name, Value: knee[k],
			Unit: "ops/s", Better: "higher",
		})
	}
	return recs
}

// MergeRecords merges fresh records into an existing trajectory. Records
// are keyed by (PR, experiment, metric); existing records win, keeping
// their original commit/date stamps, so repeated runs of bench_record.sh
// are append-only: re-normalizing an old BENCH file never rewrites the
// history already recorded for it. The result is sorted by (PR,
// experiment, metric).
func MergeRecords(existing, fresh []Record) []Record {
	key := func(r Record) string {
		return fmt.Sprintf("%d\x00%s\x00%s", r.PR, r.Experiment, r.Metric)
	}
	seen := make(map[string]bool, len(existing))
	out := append([]Record(nil), existing...)
	for _, r := range existing {
		seen[key(r)] = true
	}
	for _, r := range fresh {
		if !seen[key(r)] {
			seen[key(r)] = true
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.PR != b.PR {
			return a.PR < b.PR
		}
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		return a.Metric < b.Metric
	})
	return out
}

// Regression is one gated metric that moved the wrong way between its
// two most recent recordings.
type Regression struct {
	// Experiment and Metric identify the measurement.
	Experiment string `json:"experiment"`
	Metric     string `json:"metric"`
	// PrevPR/Prev and LastPR/Last are the two compared recordings.
	PrevPR int     `json:"prevPR"`
	Prev   float64 `json:"prev"`
	LastPR int     `json:"lastPR"`
	Last   float64 `json:"last"`
	// Better is the metric's gate direction.
	Better string `json:"better"`
	// ChangePct is the relative change from Prev to Last in percent
	// (negative = decreased).
	ChangePct float64 `json:"changePct"`
}

// String renders the regression for the gate's failure output.
func (r Regression) String() string {
	return fmt.Sprintf("%s %s: %g (PR%d) -> %g (PR%d), %+.1f%% (%s is better)",
		r.Experiment, r.Metric, r.Prev, r.PrevPR, r.Last, r.LastPR, r.ChangePct, r.Better)
}

// CheckRecords runs the regression gate: for every gated metric (Better
// set) recorded under at least two distinct PRs, compare the newest
// recording against the previous one and report it when it moved in the
// wrong direction by more than tolerancePct percent. Metrics recorded
// only once, ungated metrics, and zero baselines are skipped, so a
// trajectory of disjoint per-PR experiments passes trivially — the gate
// bites exactly when a PR re-records a tracked number and tanks it.
// gated reports how many metric pairs were actually compared.
func CheckRecords(recs []Record, tolerancePct float64) (regressions []Regression, gated int) {
	byMetric := make(map[string][]Record)
	var order []string
	for _, r := range recs {
		if r.Better == "" {
			continue
		}
		k := r.Experiment + "\x00" + r.Metric
		if _, ok := byMetric[k]; !ok {
			order = append(order, k)
		}
		byMetric[k] = append(byMetric[k], r)
	}
	sort.Strings(order)
	for _, k := range order {
		series := byMetric[k]
		sort.SliceStable(series, func(i, j int) bool { return series[i].PR < series[j].PR })
		last := series[len(series)-1]
		var prev *Record
		for i := len(series) - 2; i >= 0; i-- {
			if series[i].PR < last.PR {
				prev = &series[i]
				break
			}
		}
		if prev == nil || prev.Value == 0 {
			continue
		}
		gated++
		change := (last.Value - prev.Value) / prev.Value * 100
		worse := (last.Better == "higher" && change < -tolerancePct) ||
			(last.Better == "lower" && change > tolerancePct)
		if worse {
			regressions = append(regressions, Regression{
				Experiment: last.Experiment, Metric: last.Metric,
				PrevPR: prev.PR, Prev: prev.Value,
				LastPR: last.PR, Last: last.Value,
				Better: last.Better, ChangePct: change,
			})
		}
	}
	return regressions, gated
}
