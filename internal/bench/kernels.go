package bench

// kernels.go — experiment T7: the GF(256) coding kernels in isolation.
// T6 measures what erasure coding buys on the wire; T7 measures what it
// costs in CPU, and what the slice-wise nibble-table kernels (with cached
// Vandermonde rows, a decode-matrix LRU and chunked parallelism) buy over
// the retained byte-at-a-time reference implementation. The pair is
// byte-identical by construction (FuzzGF256Kernels), so this table is a
// pure throughput comparison.

import (
	"fmt"
	"time"

	"securestore/internal/fragment"
)

// codingThroughput runs fn iters times over size payload bytes and
// returns MB/s of original data coded.
func codingThroughput(size, iters int, fn func() error) (float64, error) {
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	return float64(size) * float64(iters) / (1 << 20) / elapsed.Seconds(), nil
}

// T7CodingKernels measures IDA encode/decode throughput: the production
// slice kernels against the scalar reference, across value sizes and the
// two deployment geometries the store actually runs (k=2,n=4 at b=1
// minimum clusters; k=3,n=5 for the space-efficiency point the R3 suite
// benchmarks end to end).
func T7CodingKernels(opts Options) (*Table, error) {
	t := &Table{
		ID:     "T7",
		Title:  "GF(256) coding kernels: slice-wise nibble tables vs byte-at-a-time reference",
		Header: []string{"value size", "geometry", "encode MB/s", "ref encode MB/s", "encode speedup", "decode MB/s", "ref decode MB/s", "decode speedup"},
		Notes: []string{
			"encode = Split (dispersal into n fragments), decode = Reconstruct from the first k fragments; MB/s counts original value bytes",
			"the reference path is the retained scalar implementation (SplitReference/ReconstructReference), byte-identical under FuzzGF256Kernels",
			"kernels: two 16-entry nibble tables per coefficient, 8-byte unrolled multiply-accumulate, cached Vandermonde rows, LRU-cached inverted decode matrices, chunked worker-pool parallelism for multi-MiB values",
		},
	}
	sizes := pick(opts, []int{64 << 10, 1 << 20, 4 << 20}, []int{64 << 10, 1 << 20})
	iters := pick(opts, 8, 3)
	geoms := []struct{ k, n int }{{2, 4}, {3, 5}}

	for _, size := range sizes {
		value := make([]byte, size)
		for i := range value {
			value[i] = byte(i*31 + i>>9)
		}
		for _, g := range geoms {
			frags, err := fragment.Split(value, g.k, g.n)
			if err != nil {
				return nil, fmt.Errorf("T7 split k=%d n=%d: %w", g.k, g.n, err)
			}
			subset := frags[:g.k]

			enc, err := codingThroughput(size, iters, func() error {
				_, err := fragment.Split(value, g.k, g.n)
				return err
			})
			if err != nil {
				return nil, err
			}
			refEnc, err := codingThroughput(size, iters, func() error {
				_, err := fragment.SplitReference(value, g.k, g.n)
				return err
			})
			if err != nil {
				return nil, err
			}
			dec, err := codingThroughput(size, iters, func() error {
				_, err := fragment.Reconstruct(subset)
				return err
			})
			if err != nil {
				return nil, err
			}
			refDec, err := codingThroughput(size, iters, func() error {
				_, err := fragment.ReconstructReference(subset)
				return err
			})
			if err != nil {
				return nil, err
			}

			t.AddRow(
				fmt.Sprintf("%d KiB", size>>10),
				fmt.Sprintf("k%dn%d", g.k, g.n),
				fmt.Sprintf("%.1f", enc),
				fmt.Sprintf("%.1f", refEnc),
				fmt.Sprintf("%.2fx", enc/refEnc),
				fmt.Sprintf("%.1f", dec),
				fmt.Sprintf("%.1f", refDec),
				fmt.Sprintf("%.2fx", dec/refDec),
			)
		}
	}
	return t, nil
}
