package bench

import (
	"context"
	"fmt"
	"time"

	"securestore/internal/baseline/masking"
	"securestore/internal/baseline/pbftsm"
	"securestore/internal/client"
	"securestore/internal/core"
	"securestore/internal/cryptoutil"
	"securestore/internal/metrics"
	"securestore/internal/simnet"
	"securestore/internal/transport"
	"securestore/internal/wire"
)

// Options tunes experiment depth.
type Options struct {
	// Quick reduces sweep sizes and repetitions so the full suite runs in
	// seconds (used by tests); full mode is the default for benchtab.
	Quick bool
	// Seed makes runs reproducible.
	Seed string
}

func (o Options) seed() string {
	if o.Seed == "" {
		return "bench"
	}
	return o.Seed
}

// pick returns quick when Quick, else full.
func pick[T any](o Options, full, quick T) T {
	if o.Quick {
		return quick
	}
	return full
}

// storeEnv is an assembled secure-store deployment plus one measured
// client session.
type storeEnv struct {
	Cluster *core.Cluster
	Group   core.GroupSpec
	Client  *client.Client
	M       *metrics.Counters
}

// newStoreEnv builds a cluster, declares the group, and connects one
// client whose costs are recorded on M. Auth is disabled so measurements
// isolate protocol costs (tokens add one verification per request
// uniformly), and the verified-signature cache is disabled so the tables
// report the paper's inherent per-operation crypto counts — what the cache
// saves is measured separately by the transport-concurrency experiment.
func newStoreEnv(n, b int, profile simnet.Profile, group core.GroupSpec, clientID, seed string) (*storeEnv, error) {
	cluster, err := core.NewCluster(core.ClusterConfig{
		N: n, B: b, Seed: seed, NetProfile: profile, DisableAuth: true, DisableVerifyCache: true,
	})
	if err != nil {
		return nil, err
	}
	cluster.RegisterGroup(group)
	m := &metrics.Counters{}
	cl, err := cluster.NewClient(core.ClientSpec{
		ID:           clientID,
		Group:        group.Name,
		Metrics:      m,
		CallTimeout:  2 * time.Second,
		ReadRetries:  3,
		RetryBackoff: 10 * time.Millisecond,
	}, group)
	if err != nil {
		cluster.Close()
		return nil, err
	}
	if err := cl.Connect(context.Background()); err != nil {
		cluster.Close()
		return nil, err
	}
	return &storeEnv{Cluster: cluster, Group: group, Client: cl, M: m}, nil
}

// newStoreEnvGossip is newStoreEnv with a custom gossip interval (the
// engines are created but only run after Cluster.StartGossip).
func newStoreEnvGossip(n, b int, profile simnet.Profile, group core.GroupSpec, clientID, seed string, gossipInterval time.Duration) (*storeEnv, error) {
	cluster, err := core.NewCluster(core.ClusterConfig{
		N: n, B: b, Seed: seed, NetProfile: profile, DisableAuth: true, DisableVerifyCache: true,
		GossipInterval: gossipInterval, GossipFanout: n - 1,
	})
	if err != nil {
		return nil, err
	}
	cluster.RegisterGroup(group)
	m := &metrics.Counters{}
	cl, err := cluster.NewClient(core.ClientSpec{
		ID:           clientID,
		Group:        group.Name,
		Metrics:      m,
		CallTimeout:  2 * time.Second,
		ReadRetries:  3,
		RetryBackoff: 10 * time.Millisecond,
	}, group)
	if err != nil {
		cluster.Close()
		return nil, err
	}
	if err := cl.Connect(context.Background()); err != nil {
		cluster.Close()
		return nil, err
	}
	return &storeEnv{Cluster: cluster, Group: group, Client: cl, M: m}, nil
}

// newExtraClient connects another measured client to an existing env.
// With farSide set, the client's contact order is reversed — it prefers
// the replicas the writer touches last, modelling a reader whose nearest
// servers are not the writer's (the situation dissemination exists for).
func (e *storeEnv) newExtraClient(id string, farSide bool) (*client.Client, *metrics.Counters, error) {
	m := &metrics.Counters{}
	var order []string
	if farSide {
		names := e.Cluster.ServerNames
		order = make([]string, len(names))
		for i, name := range names {
			order[len(names)-1-i] = name
		}
	}
	cl, err := e.Cluster.NewClient(core.ClientSpec{
		ID:           id,
		Group:        e.Group.Name,
		Metrics:      m,
		CallTimeout:  2 * time.Second,
		ReadRetries:  3,
		RetryBackoff: 10 * time.Millisecond,
		ServerOrder:  order,
	}, e.Group)
	if err != nil {
		return nil, nil, err
	}
	if err := cl.Connect(context.Background()); err != nil {
		return nil, nil, err
	}
	return cl, m, nil
}

// Close releases the env.
func (e *storeEnv) Close() { e.Cluster.Close() }

// maskingEnv is a masking-quorum baseline deployment.
type maskingEnv struct {
	Bus     *transport.Bus
	Servers []*masking.Server
	Client  *masking.Client
	M       *metrics.Counters
}

// newMaskingEnv builds n baseline replicas and one measured client.
func newMaskingEnv(n, b int, profile simnet.Profile, seed string, multiWriter bool) (*maskingEnv, error) {
	ring := cryptoutil.NewKeyring()
	net := simnet.New(profile, 42)
	bus := transport.NewBus(net)
	m := &metrics.Counters{}

	env := &maskingEnv{Bus: bus, M: m}
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("m%02d", i)
		srv := masking.NewServer(name, ring, m)
		bus.Register(name, srv)
		env.Servers = append(env.Servers, srv)
		names = append(names, name)
	}
	key := cryptoutil.DeterministicKeyPair("mclient", seed)
	ring.MustRegister(key.ID, key.Public)
	cl, err := masking.NewClient(masking.Config{
		ID:          key.ID,
		Key:         key,
		Ring:        ring,
		Servers:     names,
		B:           b,
		Caller:      bus.Caller(key.ID, m),
		Metrics:     m,
		MultiWriter: multiWriter,
		CallTimeout: 2 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	env.Client = cl
	return env, nil
}

// pbftEnv is a PBFT baseline deployment.
type pbftEnv struct {
	Cluster *pbftsm.Cluster
	Client  *pbftsm.Client
	M       *metrics.Counters
}

// newPBFTEnv builds a 3f+1 replica state machine over the given profile.
// All parties share one metrics counter, so M captures total protocol
// messages — the O(n²) the paper attributes to this approach.
func newPBFTEnv(f int, profile simnet.Profile, seed string) (*pbftEnv, error) {
	net := simnet.New(profile, 42)
	bus := transport.NewBus(net)
	m := &metrics.Counters{}
	cluster, err := pbftsm.NewCluster(bus, f, seed, m)
	if err != nil {
		return nil, err
	}
	cl := cluster.NewClusterClient(bus, "pclient", seed, m)
	return &pbftEnv{Cluster: cluster, Client: cl, M: m}, nil
}

// mrcGroup and ccGroup are the standard experiment groups.
func mrcGroup() core.GroupSpec {
	return core.GroupSpec{Name: "bench", Consistency: wire.MRC}
}

func ccGroup() core.GroupSpec {
	return core.GroupSpec{Name: "bench", Consistency: wire.CC}
}

func mwGroup() core.GroupSpec {
	return core.GroupSpec{Name: "bench", Consistency: wire.CC, MultiWriter: true}
}

// msPerOp renders a per-op duration in milliseconds.
func msPerOp(total time.Duration, ops int) string {
	if ops == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", float64(total.Microseconds())/1000/float64(ops))
}

// perOp renders an integer total divided by op count.
func perOp(total int64, ops int) string {
	if ops == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f", float64(total)/float64(ops))
}
