package bench

import (
	"context"
	"fmt"
	"os"
	"time"

	"securestore/internal/accessctl"
	"securestore/internal/core"
	"securestore/internal/cryptoutil"
	"securestore/internal/gossip"
	"securestore/internal/metrics"
	"securestore/internal/quorum"
	"securestore/internal/server"
	"securestore/internal/simnet"
	"securestore/internal/timestamp"
	"securestore/internal/wire"
)

// A1CausalGating demonstrates why Section 5.3 makes servers withhold
// writes until their causal predecessors arrive. A malicious client
// writes a value whose context claims a spuriously high timestamp for a
// related item; any reader that accepts the write poisons its own context
// and can never read the related item again (the paper's "easy denial of
// service attack"). With gating on, honest servers never report the
// poisoned write and the reader is unaffected.
func A1CausalGating(opts Options) (*Table, error) {
	t := &Table{
		ID:    "A1",
		Title: "causal gating vs the spurious-context DoS attack (n=4, b=1, multi-writer CC)",
		Header: []string{"causal gating", "doc read returns", "dep read after doc read",
			"reader context poisoned"},
		Notes: []string{
			"attack: malicious client writes doc with context naming dep@10^9, a write that does not exist",
		},
	}
	ctx := context.Background()

	for _, gating := range []bool{true, false} {
		cluster, err := core.NewCluster(core.ClusterConfig{
			N: 4, B: 1, Seed: opts.seed(), DisableCausalGating: !gating,
		})
		if err != nil {
			return nil, err
		}
		group := core.GroupSpec{Name: "shared", Consistency: wire.CC, MultiWriter: true}
		cluster.RegisterGroup(group)

		honest, err := cluster.NewClient(core.ClientSpec{ID: "honest", Group: "shared"}, group)
		if err != nil {
			cluster.Close()
			return nil, err
		}
		reader, err := cluster.NewClient(core.ClientSpec{ID: "reader", Group: "shared",
			CallTimeout: time.Second, ReadRetries: 1, RetryBackoff: 5 * time.Millisecond}, group)
		if err != nil {
			cluster.Close()
			return nil, err
		}
		if err := honest.Connect(ctx); err != nil {
			cluster.Close()
			return nil, err
		}
		if err := reader.Connect(ctx); err != nil {
			cluster.Close()
			return nil, err
		}

		// Honest state: dep and doc exist everywhere.
		if _, err := honest.Write(ctx, "dep", []byte("dep-ok")); err != nil {
			cluster.Close()
			return nil, err
		}
		if _, err := honest.Write(ctx, "doc", []byte("doc-ok")); err != nil {
			cluster.Close()
			return nil, err
		}
		cluster.Converge()

		// The attack: a validly signed write whose context lies about dep.
		attacker := cryptoutil.DeterministicKeyPair("attacker", opts.seed())
		if err := cluster.Ring.Register(attacker.ID, attacker.Public); err != nil {
			cluster.Close()
			return nil, err
		}
		var tok *accessctl.Token
		if cluster.Authority != nil {
			tok = cluster.Authority.Issue(attacker.ID, "shared", accessctl.ReadWrite, nil)
		}
		evil := []byte("doc-evil")
		evilWrite := &wire.SignedWrite{
			Group: "shared",
			Item:  "doc",
			Stamp: timestamp.Stamp{Time: 50, Writer: attacker.ID, Digest: cryptoutil.Digest(evil)},
			WriterCtx: map[string]timestamp.Stamp{
				"doc": {Time: 50, Writer: attacker.ID, Digest: cryptoutil.Digest(evil)},
				"dep": {Time: 1_000_000_000, Writer: attacker.ID},
			},
			Value: evil,
		}
		evilWrite.Sign(attacker, nil)
		caller := cluster.Bus.Caller(attacker.ID, nil)
		for _, srv := range cluster.ServerNames {
			_, _ = caller.Call(ctx, srv, wire.WriteReq{Write: evilWrite, Token: tok})
		}

		docVal := "error"
		if v, _, err := reader.Read(ctx, "doc"); err == nil {
			docVal = string(v)
		}
		depResult := "ok"
		if _, _, err := reader.Read(ctx, "dep"); err != nil {
			depResult = "FAILS (DoS)"
		}
		poisoned := reader.Context().Get("dep").Time >= 1_000_000_000
		cluster.Close()

		t.AddRow(fmt.Sprint(gating), docVal, depResult, fmt.Sprint(poisoned))
	}
	return t, nil
}

// A2WriteLog demonstrates the Section 5.3 write log: "a value being
// over-written is still available while the new value is being
// disseminated to at least b+1 non-malicious servers". With a deep enough
// log, a reader facing a stale-lying server and an under-disseminated new
// value can still assemble b+1 matching reports for the previous value;
// with depth 1 the previous value is evicted and the read fails.
func A2WriteLog(opts Options) (*Table, error) {
	t := &Table{
		ID:     "A2",
		Title:  "multi-writer write-log depth vs overwrite availability (n=4, b=1)",
		Header: []string{"log depth", "read outcome", "value returned"},
		Notes: []string{
			"scenario: v_old everywhere; one stale server lies with the initial value; v_new hand-delivered to one server only",
			"the reader's 2b+1 quorum must find b+1 matches; only the log preserves v_old at the v_new holder",
		},
	}
	ctx := context.Background()

	for _, depth := range []int{1, 2, 4} {
		cluster, err := core.NewCluster(core.ClusterConfig{
			N: 4, B: 1, Seed: opts.seed(), LogDepth: depth,
		})
		if err != nil {
			return nil, err
		}
		group := core.GroupSpec{Name: "shared", Consistency: wire.CC, MultiWriter: true}
		cluster.RegisterGroup(group)

		writer, err := cluster.NewClient(core.ClientSpec{ID: "writer", Group: "shared"}, group)
		if err != nil {
			cluster.Close()
			return nil, err
		}
		reader, err := cluster.NewClient(core.ClientSpec{ID: "reader", Group: "shared",
			CallTimeout: time.Second, ReadRetries: 1, RetryBackoff: 5 * time.Millisecond}, group)
		if err != nil {
			cluster.Close()
			return nil, err
		}
		if err := writer.Connect(ctx); err != nil {
			cluster.Close()
			return nil, err
		}
		if err := reader.Connect(ctx); err != nil {
			cluster.Close()
			return nil, err
		}

		// v0 then v_old, both converged; the stale server will lie with v0.
		if _, err := writer.Write(ctx, "x", []byte("v0")); err != nil {
			cluster.Close()
			return nil, err
		}
		cluster.Converge()
		if _, err := writer.Write(ctx, "x", []byte("v_old")); err != nil {
			cluster.Close()
			return nil, err
		}
		cluster.Converge()
		cluster.InjectFaults(server.Stale, 1) // s00 now serves v0 and drops updates

		// Hand-deliver v_new to exactly one healthy server (s01), modelling
		// a write caught mid-dissemination.
		wkey := cryptoutil.DeterministicKeyPair("writer", opts.seed())
		var tok *accessctl.Token
		if cluster.Authority != nil {
			tok = cluster.Authority.Issue("writer", "shared", accessctl.ReadWrite, nil)
		}
		vNew := []byte("v_new")
		newWrite := &wire.SignedWrite{
			Group: "shared",
			Item:  "x",
			Stamp: timestamp.Stamp{Time: 100, Writer: "writer", Digest: cryptoutil.Digest(vNew)},
			WriterCtx: map[string]timestamp.Stamp{
				"x": {Time: 100, Writer: "writer", Digest: cryptoutil.Digest(vNew)},
			},
			Value: vNew,
		}
		newWrite.Sign(wkey, nil)
		caller := cluster.Bus.Caller("writer", nil)
		if _, err := caller.Call(ctx, cluster.ServerNames[1], wire.WriteReq{Write: newWrite, Token: tok}); err != nil {
			cluster.Close()
			return nil, fmt.Errorf("A2 hand-delivery: %w", err)
		}

		// Reader queries its 2b+1 = 3 first servers: s00 (stale: v0),
		// s01 (v_new + log), s02 (v_old).
		outcome := "ok"
		val := ""
		if v, _, err := reader.Read(ctx, "x"); err != nil {
			outcome = "FAILS (no b+1 match)"
		} else {
			val = string(v)
		}
		cluster.Close()
		t.AddRow(depth, outcome, val)
	}
	return t, nil
}

// A3ContextReconstruct quantifies Section 5.1's trade-off: storing the
// context in the secure store makes session start cheap
// (2·⌈(n+b+1)/2⌉ messages regardless of group size), while reconstruction
// after a crashed session reads every item from every server.
func A3ContextReconstruct(opts Options) (*Table, error) {
	n, b := 7, 2
	t := &Table{
		ID:    "A3",
		Title: fmt.Sprintf("context acquisition vs reconstruction cost (n=%d, b=%d)", n, b),
		Header: []string{"group items", "connect msgs", "connect ms",
			"reconstruct msgs", "reconstruct ms"},
	}
	ctx := context.Background()
	sizes := pick(opts, []int{4, 16, 48}, []int{4, 8})

	for _, size := range sizes {
		env, err := newStoreEnv(n, b, simnet.LAN, ccGroup(), "alice", opts.seed())
		if err != nil {
			return nil, err
		}
		items := make([]string, size)
		for i := range items {
			items[i] = fmt.Sprintf("item%03d", i)
			if _, err := env.Client.Write(ctx, items[i], []byte("v")); err != nil {
				env.Close()
				return nil, err
			}
		}
		env.Cluster.Converge()
		if err := env.Client.Disconnect(ctx); err != nil {
			env.Close()
			return nil, err
		}

		env.M.Reset()
		start := time.Now()
		if err := env.Client.Connect(ctx); err != nil {
			env.Close()
			return nil, err
		}
		connectTime := time.Since(start)
		connectMsgs := env.M.MessagesSent()

		env.M.Reset()
		start = time.Now()
		if err := env.Client.ReconstructContext(ctx, items); err != nil {
			env.Close()
			return nil, err
		}
		reconTime := time.Since(start)
		reconMsgs := env.M.MessagesSent()
		env.Close()

		t.AddRow(size, connectMsgs, msPerOp(connectTime, 1), reconMsgs, msPerOp(reconTime, 1))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("connect formula: 2*ceil((n+b+1)/2) = %d msgs independent of group size", 2*quorum.ContextQuorum(n, b)),
		"reconstruct formula: items * (up to 2n) msgs — grows linearly with the group")
	return t, nil
}

// Experiment couples an identifier with its runner.
type Experiment struct {
	ID   string
	Name string
	Run  func(Options) (*Table, error)
}

// All returns every experiment and ablation in presentation order.
func All() []Experiment {
	return []Experiment{
		{"e1", "context quorum sizes and message costs", E1ContextQuorum},
		{"e2", "data operation message costs", E2DataOpMessages},
		{"e3", "cryptographic operation counts", E3CryptoCounts},
		{"e4", "gossip frequency vs read freshness", E4GossipFreshness},
		{"e5", "latency comparison across systems", E5LatencyComparison},
		{"e6", "multi-writer protocol overhead", E6MultiWriter},
		{"e7", "fault tolerance and safety", E7FaultTolerance},
		{"e8", "cost vs consistency spectrum", E8ConsistencySpectrum},
		{"a1", "ablation: causal gating", A1CausalGating},
		{"a2", "ablation: write-log depth", A2WriteLog},
		{"a3", "ablation: context reconstruction", A3ContextReconstruct},
		{"a4", "ablation: eager single-round reads", A4EagerRead},
		{"a5", "ablation: gossip modes (push/pull/push-pull)", A5GossipModes},
		{"a6", "ablation: write-ahead-log durability cost", A6Persistence},
		{"t1", "transport: multiplexed vs serialized concurrency", T1TransportConcurrency},
		{"t2", "transport: verified-signature cache savings", T2VerifyCache},
		{"t3", "replica concurrency: coarse vs fine-grained locking", T3ReplicaConcurrency},
		{"t4", "wire codec: binary vs gob round trips + saturation", T4CodecComparison},
		{"t5", "sharding: multi-group scaling + hot-key skew", T5ShardScaling},
		{"t6", "fragmentation: replicated vs erasure-coded wire bytes", T6Fragmentation},
		{"t7", "fragmentation: GF(256) coding kernels vs scalar reference", T7CodingKernels},
		{"obs", "observability: instrumentation overhead + latency percentiles", O1ObsOverhead},
		{"chaos", "chaos soak: composed faults vs checker verdict", ChaosSoak},
	}
}

// A4EagerRead quantifies the single-round read optimization (an
// engineering extension beyond the paper): fetching values directly from
// b+1 servers halves read latency but moves b+1 value copies and verifies
// up to b+1 signatures instead of one.
func A4EagerRead(opts Options) (*Table, error) {
	t := &Table{
		ID:     "A4",
		Title:  "two-phase read (paper, Figure 2) vs eager single-round read (n=4, b=1)",
		Header: []string{"read protocol", "network", "read ms", "read msgs", "client verifies/read"},
		Notes: []string{
			"eager reads trade bandwidth (b+1 value copies) and verifications for one round trip",
		},
	}
	ctx := context.Background()
	ops := pick(opts, 8, 3)

	for _, prof := range []struct {
		name string
		p    simnet.Profile
	}{{"LAN", simnet.LAN}, {"WAN", simnet.WAN}} {
		for _, eager := range []bool{false, true} {
			cluster, err := core.NewCluster(core.ClusterConfig{
				N: 4, B: 1, Seed: opts.seed(), NetProfile: prof.p, DisableAuth: true, DisableVerifyCache: true,
			})
			if err != nil {
				return nil, err
			}
			group := core.GroupSpec{Name: "g", Consistency: wire.MRC}
			cluster.RegisterGroup(group)
			m := &metrics.Counters{}
			cl, err := cluster.NewClient(core.ClientSpec{
				ID: "alice", Group: "g", Metrics: m, EagerRead: eager,
				CallTimeout: 2 * time.Second,
			}, group)
			if err != nil {
				cluster.Close()
				return nil, err
			}
			if err := cl.Connect(ctx); err != nil {
				cluster.Close()
				return nil, err
			}
			if _, err := cl.Write(ctx, "x", []byte("value")); err != nil {
				cluster.Close()
				return nil, err
			}
			cluster.Converge()

			m.Reset()
			var total time.Duration
			for i := 0; i < ops; i++ {
				start := time.Now()
				if _, _, err := cl.Read(ctx, "x"); err != nil {
					cluster.Close()
					return nil, err
				}
				total += time.Since(start)
			}
			msgs, verifies := m.MessagesSent(), m.Verifications()
			cluster.Close()

			mode := "two-phase (paper)"
			if eager {
				mode = "eager single-round"
			}
			t.AddRow(mode, prof.name, msPerOp(total, ops), perOp(msgs, ops), perOp(verifies, ops))
		}
	}
	return t, nil
}

// A5GossipModes compares the three anti-entropy directions (epidemic
// replication, the paper's ref [7]): rounds until a single write reaches
// every replica, and the network messages spent, as the cluster grows.
// Push floods fresh writes fastest; pull costs a request per round even
// when idle but lets lagging replicas drive their own recovery; push-pull
// converges fastest at the highest message cost.
func A5GossipModes(opts Options) (*Table, error) {
	t := &Table{
		ID:     "A5",
		Title:  "gossip mode vs convergence (fanout 1, one fresh write)",
		Header: []string{"n", "mode", "rounds to converge", "network msgs"},
		Notes: []string{
			"rounds: full sweeps (every engine fires once per sweep) until all replicas hold the write",
			"msgs: simulated-network messages during convergence, including empty pull probes",
		},
	}
	ctx := context.Background()
	sizes := pick(opts, []int{4, 7, 13}, []int{4})

	for _, n := range sizes {
		for _, mode := range []gossip.Mode{gossip.Push, gossip.Pull, gossip.PushPull} {
			cluster, err := core.NewCluster(core.ClusterConfig{
				N: n, B: 1, Seed: opts.seed(), DisableAuth: true, DisableVerifyCache: true,
				GossipMode: mode, GossipFanout: 1,
			})
			if err != nil {
				return nil, err
			}
			group := core.GroupSpec{Name: "g", Consistency: wire.MRC}
			cluster.RegisterGroup(group)
			cl, err := cluster.NewClient(core.ClientSpec{ID: "w", Group: "g"}, group)
			if err != nil {
				cluster.Close()
				return nil, err
			}
			if err := cl.Connect(ctx); err != nil {
				cluster.Close()
				return nil, err
			}
			if _, err := cl.Write(ctx, "x", []byte("v")); err != nil {
				cluster.Close()
				return nil, err
			}
			cluster.Net.ResetStats()

			rounds := 0
			for ; rounds < 20*n; rounds++ {
				done := true
				for _, srv := range cluster.Servers {
					if srv.Head("g", "x") == nil {
						done = false
						break
					}
				}
				if done {
					break
				}
				for _, e := range cluster.Engines {
					e.Round()
				}
			}
			msgs, _ := cluster.Net.Stats()
			cluster.Close()

			modeName := map[gossip.Mode]string{
				gossip.Push: "push", gossip.Pull: "pull", gossip.PushPull: "push-pull",
			}[mode]
			t.AddRow(n, modeName, rounds, msgs)
		}
	}
	return t, nil
}

// A6Persistence measures the cost of durability: per-write latency with
// and without the write-ahead log, and the time to recover a replica's
// state by replay (including signature re-verification of every record).
func A6Persistence(opts Options) (*Table, error) {
	t := &Table{
		ID:     "A6",
		Title:  "write-ahead-log durability costs (n=4, b=1, instant network)",
		Header: []string{"configuration", "writes", "write ms (mean)", "recovery ms"},
		Notes: []string{
			"recovery replays the log and re-verifies every record's client signature",
		},
	}
	ctx := context.Background()
	writes := pick(opts, 200, 50)

	run := func(durable bool) error {
		var dataDir string
		if durable {
			dir, err := os.MkdirTemp("", "securestore-a6-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			dataDir = dir
		}
		cluster, err := core.NewCluster(core.ClusterConfig{
			N: 4, B: 1, Seed: opts.seed(), DisableAuth: true, DisableVerifyCache: true,
			DataDir: dataDir, Principals: []string{"alice"},
		})
		if err != nil {
			return err
		}
		group := core.GroupSpec{Name: "g", Consistency: wire.MRC}
		cluster.RegisterGroup(group)
		cl, err := cluster.NewClient(core.ClientSpec{ID: "alice", Group: "g"}, group)
		if err != nil {
			cluster.Close()
			return err
		}
		if err := cl.Connect(ctx); err != nil {
			cluster.Close()
			return err
		}

		start := time.Now()
		for i := 0; i < writes; i++ {
			if _, err := cl.Write(ctx, fmt.Sprintf("item%02d", i%8), []byte(fmt.Sprintf("%06d", i))); err != nil {
				cluster.Close()
				return err
			}
		}
		writeTime := time.Since(start)
		cluster.Close()

		recovery := "n/a"
		if durable {
			start = time.Now()
			c2, err := core.NewCluster(core.ClusterConfig{
				N: 4, B: 1, Seed: opts.seed(), DisableAuth: true, DisableVerifyCache: true,
				DataDir: dataDir, Principals: []string{"alice"},
			})
			if err != nil {
				return err
			}
			recovery = msPerOp(time.Since(start), 1)
			c2.Close()
		}

		name := "in-memory"
		if durable {
			name = "write-ahead log"
		}
		t.AddRow(name, writes, msPerOp(writeTime, writes), recovery)
		return nil
	}
	if err := run(false); err != nil {
		return nil, err
	}
	if err := run(true); err != nil {
		return nil, err
	}
	return t, nil
}
