package bench

import (
	"context"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"securestore/internal/workload"
)

func TestArrivalTimesDeterministicUnderSeed(t *testing.T) {
	for _, arrival := range []Arrival{ArrivalUniform, ArrivalPoisson} {
		a := OpenLoop{Rate: 500, Duration: time.Second, Arrival: arrival, Seed: 7}
		b := OpenLoop{Rate: 500, Duration: time.Second, Arrival: arrival, Seed: 7}
		ta, tb := a.ArrivalTimes(), b.ArrivalTimes()
		if !reflect.DeepEqual(ta, tb) {
			t.Fatalf("%v: identical configs produced different schedules", arrival)
		}
		if len(ta) != 500 {
			t.Fatalf("%v: want 500 arrivals for 500 ops/s x 1s, got %d", arrival, len(ta))
		}
		for i := 1; i < len(ta); i++ {
			if ta[i] < ta[i-1] {
				t.Fatalf("%v: schedule not monotone at %d: %v < %v", arrival, i, ta[i], ta[i-1])
			}
		}
	}
	// Poisson schedules must differ across seeds (uniform is seed-free by
	// construction).
	a := OpenLoop{Rate: 500, Duration: time.Second, Arrival: ArrivalPoisson, Seed: 7}
	b := OpenLoop{Rate: 500, Duration: time.Second, Arrival: ArrivalPoisson, Seed: 8}
	if reflect.DeepEqual(a.ArrivalTimes(), b.ArrivalTimes()) {
		t.Fatal("poisson schedules identical across different seeds")
	}
}

func TestOpsStreamDeterministicUnderSeed(t *testing.T) {
	cfg := OpenLoop{Rate: 200, Duration: time.Second, Seed: 3,
		Workload: workload.Config{Items: 8, ReadFraction: 0.5, ValueSize: 32}}
	a, b := cfg.Ops(), cfg.Ops()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical configs produced different op streams")
	}
	cfg.Seed = 4
	if reflect.DeepEqual(a, cfg.Ops()) {
		t.Fatal("op streams identical across different seeds")
	}
}

func TestParseArrival(t *testing.T) {
	if a, err := ParseArrival("poisson"); err != nil || a != ArrivalPoisson {
		t.Fatalf("poisson: got %v, %v", a, err)
	}
	if a, err := ParseArrival(" Uniform "); err != nil || a != ArrivalUniform {
		t.Fatalf("uniform: got %v, %v", a, err)
	}
	if _, err := ParseArrival("bursty"); err == nil {
		t.Fatal("unknown arrival accepted")
	}
}

// TestOpenLoopChargesQueueingDelay pins the coordinated-omission-safe
// property: against a stalled server (every op takes 20ms, one session),
// a 200 ops/s schedule backs up, and because latency is measured from the
// *intended* start time the tail must show the queueing delay — far above
// the 20ms service time a closed-loop harness would report.
func TestOpenLoopChargesQueueingDelay(t *testing.T) {
	const service = 20 * time.Millisecond
	cfg := OpenLoop{
		Rate: 200, Duration: 250 * time.Millisecond, Sessions: 1,
		Arrival: ArrivalUniform, Seed: 1,
		Workload: workload.Config{Items: 4, ValueSize: 8},
	}
	res, err := cfg.Run(context.Background(), func(ctx context.Context, op workload.Op) error {
		time.Sleep(service)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued != 50 {
		t.Fatalf("want 50 ops issued, got %d", res.Issued)
	}
	// 50 ops x 20ms through one session = 1s of work against a 250ms
	// schedule: the last ops waited ~750ms. Demand a p99 of at least 5x
	// the service time (generous slack for scheduler noise).
	if got := res.Latency.P99; got < 5*service {
		t.Fatalf("p99 %v does not show queueing delay (service time %v): intended-start measurement broken", got, service)
	}
	if res.Achieved >= cfg.Rate {
		t.Fatalf("achieved %.0f ops/s >= offered %.0f on a saturated run", res.Achieved, cfg.Rate)
	}

	// The control: enough sessions to absorb the same schedule keeps the
	// tail near the service time.
	cfg.Sessions = 16
	res, err = cfg.Run(context.Background(), func(ctx context.Context, op workload.Op) error {
		time.Sleep(service)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Latency.P99; got > 5*service {
		t.Fatalf("well-provisioned p99 %v unexpectedly high (service time %v)", got, service)
	}
}

func TestOpenLoopCountsErrors(t *testing.T) {
	cfg := OpenLoop{Rate: 1000, Duration: 20 * time.Millisecond, Sessions: 4, Seed: 1,
		Workload: workload.Config{Items: 4, ValueSize: 8}}
	var n atomic.Int64
	res, err := cfg.Run(context.Background(), func(ctx context.Context, op workload.Op) error {
		if n.Add(1)%2 == 0 {
			return context.DeadlineExceeded
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 || res.Errors > res.Issued {
		t.Fatalf("errors %d implausible for %d issued", res.Errors, res.Issued)
	}
}
