package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"securestore/internal/client"
	"securestore/internal/core"
	"securestore/internal/cryptoutil"
	"securestore/internal/metrics"
	"securestore/internal/server"
	"securestore/internal/storage"
	"securestore/internal/transport"
	"securestore/internal/wire"
)

// delayedHandler adds a fixed service delay in front of a real replica,
// modelling WAN round trips / disk service time deterministically. The
// sleep happens outside the server's own mutex, so with a multiplexed
// transport many requests wait it out concurrently.
type delayedHandler struct {
	inner transport.Handler
	delay time.Duration
}

func (h delayedHandler) ServeRequest(ctx context.Context, from string, req wire.Request) (wire.Response, error) {
	if h.delay > 0 {
		time.Sleep(h.delay)
	}
	return h.inner.ServeRequest(ctx, from, req)
}

// tcpStoreEnv is a real-socket deployment: n replicas each behind a
// TCPServer on a loopback port, one client session over a TCPCaller.
type tcpStoreEnv struct {
	tcpServers []*transport.TCPServer
	logs       []*storage.Log
	caller     *transport.TCPCaller
	Client     *client.Client
	M          *metrics.Counters
	// SrvM aggregates all four replicas' counters (stripe contention, WAL
	// group commits) for experiments that report server-side cost.
	SrvM *metrics.Counters
}

func (e *tcpStoreEnv) Close() {
	e.caller.Close()
	for _, s := range e.tcpServers {
		s.Close()
	}
	for _, l := range e.logs {
		_ = l.Close()
	}
}

// envParams tunes the replicas a tcpStoreEnv builds. The zero value (and a
// nil pointer) is the production configuration: fine-grained locking, no
// persistence.
type envParams struct {
	// serialized runs every replica with the coarse global request lock
	// (server.Config.Serialized) — the pre-concurrency baseline.
	serialized bool
	// dataDir, when non-empty, gives each replica a write-ahead log under
	// it, so appends exercise the group-commit path.
	dataDir string
	// noVerifyCache disables the env's verified-signature cache, restoring
	// the configuration earlier benchmark tables (T1/T2) measured — every
	// replica re-runs Ed25519 on every signed write it receives.
	noVerifyCache bool
	// gob runs every replica and the client over gob-encoded frames
	// (transport.WithGobCodec) — the pre-codec-PR wire protocol baseline.
	gob bool
	// fragThreshold, when positive, makes the client erasure-code values of
	// at least this many post-encryption bytes instead of replicating them
	// (client.Config.FragmentThreshold).
	fragThreshold int
	// fragK overrides the erasure-coding reconstruction threshold
	// (default b+1 = 2; at n=4, b=1 the maximum feasible k is 3).
	fragK int
}

func (p *envParams) get() envParams {
	if p == nil {
		return envParams{}
	}
	return *p
}

// newTCPStoreEnv assembles n=4, b=1 replicas over loopback TCP with the
// given per-request service delay, and connects one client whose caller is
// built with callerOpts (e.g. transport.Serialized() for the baseline).
// A non-nil obs turns on the full observability wiring that securestored
// runs with: client+server span tracing, span-fed latency histograms, and
// transport round-trip histograms. params (nil for defaults) selects the
// replica configuration.
func newTCPStoreEnv(seed string, delay time.Duration, obs *benchObs, params *envParams, callerOpts ...transport.CallerOption) (*tcpStoreEnv, error) {
	wire.RegisterGob()
	const n, b = 4, 1
	p := params.get()
	ring := cryptoutil.NewKeyring()
	// Production parity: every real deployment (core.NewCluster, deploy)
	// enables the verified-signature cache unless explicitly disabled, so
	// the loopback envs measure the transport and replica — not repeated
	// Ed25519 verifications of the same signed writes.
	if !p.noVerifyCache {
		ring.EnableVerifyCache(4096)
	}
	env := &tcpStoreEnv{M: &metrics.Counters{}, SrvM: &metrics.Counters{}}
	names := make([]string, 0, n)
	addrs := make(map[string]string, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("s%02d", i)
		var persist *storage.Log
		if p.dataDir != "" {
			log, err := storage.Open(filepath.Join(p.dataDir, name+".log"))
			if err != nil {
				env.Close()
				return nil, err
			}
			log.Metrics = env.SrvM
			env.logs = append(env.logs, log)
			persist = log
		}
		srv := server.New(server.Config{
			ID: name, Ring: ring, Metrics: env.SrvM, Tracer: obs.serverTracer(),
			Serialized: p.serialized, Persist: persist,
		})
		srv.RegisterGroup("bench", server.Policy{Consistency: wire.MRC})
		srvOpts := []transport.ServerOption{transport.WithServerCounters(env.SrvM)}
		if p.gob {
			srvOpts = append(srvOpts, transport.WithGobCodec())
		}
		tcp := transport.NewTCPServer(delayedHandler{inner: srv, delay: delay}, srvOpts...)
		addr, err := tcp.Serve("127.0.0.1:0")
		if err != nil {
			env.Close()
			return nil, err
		}
		env.tcpServers = append(env.tcpServers, tcp)
		names = append(names, name)
		addrs[name] = addr
	}
	key := cryptoutil.DeterministicKeyPair("t1client", seed)
	ring.MustRegister(key.ID, key.Public)
	if obs != nil {
		callerOpts = append(callerOpts, transport.WithLatencies(obs.hist))
	}
	if p.gob {
		callerOpts = append(callerOpts, transport.WithGobCodec())
	}
	env.caller = transport.NewTCPCaller(key.ID, addrs, env.M, callerOpts...)
	cl, err := client.New(client.Config{
		ID: key.ID, Key: key, Ring: ring, Servers: names, B: b,
		Group: "bench", Consistency: wire.MRC,
		Caller: env.caller, Metrics: env.M, Tracer: obs.clientTracer(),
		FragmentThreshold: p.fragThreshold, FragmentK: p.fragK,
		CallTimeout: 10 * time.Second, ReadRetries: 1, RetryBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		env.Close()
		return nil, err
	}
	if err := cl.Connect(context.Background()); err != nil {
		env.Close()
		return nil, err
	}
	env.Client = cl
	return env, nil
}

// runTCPSessions drives `sessions` concurrent worker sessions, each doing
// `opsEach` write+read pairs on its own items through the shared
// connection pool, and returns ops/sec.
func runTCPSessions(env *tcpStoreEnv, sessions, opsEach int) (float64, error) {
	ctx := context.Background()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	start := time.Now()
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < opsEach; j++ {
				item := fmt.Sprintf("item-%d-%d", g, j)
				if _, err := env.Client.Write(ctx, item, []byte("benchmark value")); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				if _, _, err := env.Client.Read(ctx, item); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	elapsed := time.Since(start)
	ops := 2 * sessions * opsEach
	return float64(ops) / elapsed.Seconds(), nil
}

// T1TransportConcurrency measures what multiplexing the TCP transport buys
// under concurrent sessions: with the serialized baseline every request to
// a replica holds that replica's connection for a full round trip, so
// concurrent sessions queue; with per-frame IDs they pipeline. The service
// delay rows model a network/disk where a round trip is not free — the
// regime the paper's deployment (LAN of workstations) actually runs in.
func T1TransportConcurrency(opts Options) (*Table, error) {
	t := &Table{
		ID:     "T1",
		Title:  "serialized vs multiplexed TCP transport: concurrent-session throughput (n=4, b=1, loopback sockets)",
		Header: []string{"service delay", "sessions", "serialized ops/s", "multiplexed ops/s", "speedup"},
		Notes: []string{
			"each session performs write+read pairs on private items; ops/s counts both",
			"serialized = one in-flight request per connection (pre-multiplexing wire protocol)",
			"service delay is added server-side per request, outside the replica lock",
		},
	}
	delays := []time.Duration{0, 2 * time.Millisecond}
	sessionCounts := pick(opts, []int{1, 4, 8}, []int{1, 4})
	opsEach := pick(opts, 20, 6)

	run := func(delay time.Duration, sessions int, copts ...transport.CallerOption) (float64, error) {
		env, err := newTCPStoreEnv(opts.seed(), delay, nil, nil, copts...)
		if err != nil {
			return 0, err
		}
		defer env.Close()
		return runTCPSessions(env, sessions, opsEach)
	}

	for _, delay := range delays {
		for _, sessions := range sessionCounts {
			serialized, err := run(delay, sessions, transport.Serialized())
			if err != nil {
				return nil, err
			}
			multiplexed, err := run(delay, sessions)
			if err != nil {
				return nil, err
			}
			t.AddRow(
				delay.String(),
				sessions,
				fmt.Sprintf("%.0f", serialized),
				fmt.Sprintf("%.0f", multiplexed),
				fmt.Sprintf("%.2fx", multiplexed/serialized),
			)
		}
	}
	return t, nil
}

// T2VerifyCache measures the verified-signature cache: how many real
// Ed25519 verifications a workload costs with and without it. The same
// signed write is verified repeatedly across a deployment — once per
// write-set replica at write time, once per replica on gossip delivery,
// once per reader — and all but the first are cache hits.
func T2VerifyCache(opts Options) (*Table, error) {
	t := &Table{
		ID:     "T2",
		Title:  "verified-signature cache: Ed25519 verifications per op (n=4, b=1, writes + gossip + far-side reads)",
		Header: []string{"verify cache", "ops", "server verifies/op", "client verifies/op", "cache hits", "hit rate"},
		Notes: []string{
			"workload: writes, anti-entropy convergence, then reads from a far-side client",
			"cache key binds (digest(data), signer, digest(sig)): a hit can never accept a forgery",
		},
	}
	ctx := context.Background()
	writes := pick(opts, 32, 8)
	reads := pick(opts, 32, 8)

	for _, cached := range []bool{false, true} {
		cluster, err := core.NewCluster(core.ClusterConfig{
			N: 4, B: 1, Seed: opts.seed(), DisableAuth: true, DisableVerifyCache: !cached,
		})
		if err != nil {
			return nil, err
		}
		group := mrcGroup()
		cluster.RegisterGroup(group)
		m := &metrics.Counters{}
		writer, err := cluster.NewClient(core.ClientSpec{
			ID: "writer", Group: group.Name, Metrics: m,
			CallTimeout: 2 * time.Second, ReadRetries: 3, RetryBackoff: 10 * time.Millisecond,
		}, group)
		if err != nil {
			cluster.Close()
			return nil, err
		}
		if err := writer.Connect(ctx); err != nil {
			cluster.Close()
			return nil, err
		}
		for i := 0; i < writes; i++ {
			if _, err := writer.Write(ctx, fmt.Sprintf("item%02d", i%8), []byte("v")); err != nil {
				cluster.Close()
				return nil, err
			}
		}
		cluster.Converge()

		readerM := &metrics.Counters{}
		names := cluster.ServerNames
		order := make([]string, len(names))
		for i, name := range names {
			order[len(names)-1-i] = name
		}
		reader, err := cluster.NewClient(core.ClientSpec{
			ID: "reader", Group: group.Name, Metrics: readerM, ServerOrder: order,
			CallTimeout: 2 * time.Second, ReadRetries: 3, RetryBackoff: 10 * time.Millisecond,
		}, group)
		if err != nil {
			cluster.Close()
			return nil, err
		}
		if err := reader.Connect(ctx); err != nil {
			cluster.Close()
			return nil, err
		}
		for i := 0; i < reads; i++ {
			if _, _, err := reader.Read(ctx, fmt.Sprintf("item%02d", i%8)); err != nil {
				cluster.Close()
				return nil, err
			}
		}

		ops := writes + reads
		serverVerifies := cluster.ServerMetrics.Verifications()
		clientVerifies := m.Verifications() + readerM.Verifications()
		hits := cluster.ServerMetrics.VerifyCacheHits() + m.VerifyCacheHits() + readerM.VerifyCacheHits()
		misses := cluster.ServerMetrics.VerifyCacheMisses() + m.VerifyCacheMisses() + readerM.VerifyCacheMisses()
		mode := "off"
		hitRate := "n/a"
		if cached {
			mode = "on"
			if hits+misses > 0 {
				hitRate = fmt.Sprintf("%.0f%%", 100*float64(hits)/float64(hits+misses))
			}
		}
		t.AddRow(mode, ops, perOp(serverVerifies, ops), perOp(clientVerifies, ops), hits, hitRate)
		cluster.Close()
	}
	return t, nil
}

// T3ReplicaConcurrency measures what this PR's replica concurrency work
// buys once the transport already pipelines (T1): the baseline column is
// the pre-PR configuration exactly as T1/T2 measured it — one global mutex
// around every request with Ed25519 verification performed inside it on
// every delivery — which plateaus at ~4-5k ops/s on zero-delay loopback
// regardless of session count. The fine-grained column is this PR's
// replica: each signature verified once, outside any lock (so the
// verified-signature cache runs at its production default), striped
// per-item state behind an RWMutex read path, and batched transport
// flushes. On a multi-core host striping additionally lets sessions on
// different items proceed in parallel; on a single-core host the whole
// gain is per-operation CPU. The WAL column repeats the fine-grained run
// with a write-ahead log per replica, where concurrent appends coalesce
// into group commits (mean records per write+flush in the last column).
func T3ReplicaConcurrency(opts Options) (*Table, error) {
	t := &Table{
		ID:     "T3",
		Title:  "replica concurrency: coarse lock + verify-inside vs verify-outside-lock + striped state (n=4, b=1, loopback sockets, 0 delay)",
		Header: []string{"sessions", "baseline ops/s", "fine-grained ops/s", "speedup", "fine+WAL ops/s", "WAL batch mean"},
		Notes: []string{
			"each session performs write+read pairs on private items; ops/s counts both",
			"baseline = pre-PR replica as T1/T2 measured it: global request mutex, every delivery re-verified inside it, no verify cache",
			"fine-grained = verify once outside locks (cache at production default), striped per-item state, RWMutex reads, batched flushes",
			"fine+WAL = fine-grained plus a write-ahead log per replica; batch mean = records per group commit",
		},
	}
	sessionCounts := pick(opts, []int{1, 2, 4, 8}, []int{1, 4})
	opsEach := pick(opts, 25, 6)

	run := func(sessions int, params *envParams) (float64, *metrics.Counters, error) {
		env, err := newTCPStoreEnv(opts.seed(), 0, nil, params)
		if err != nil {
			return 0, nil, err
		}
		defer env.Close()
		ops, err := runTCPSessions(env, sessions, opsEach)
		return ops, env.SrvM, err
	}

	for _, sessions := range sessionCounts {
		coarse, _, err := run(sessions, &envParams{serialized: true, noVerifyCache: true})
		if err != nil {
			return nil, err
		}
		fine, _, err := run(sessions, nil)
		if err != nil {
			return nil, err
		}
		dir, err := os.MkdirTemp("", "bench-t3-*")
		if err != nil {
			return nil, err
		}
		wal, srvM, err := run(sessions, &envParams{dataDir: dir})
		_ = os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		batchMean := "n/a"
		if n := srvM.WALBatches(); n > 0 {
			batchMean = fmt.Sprintf("%.2f", float64(srvM.WALBatchRecords())/float64(n))
		}
		t.AddRow(
			sessions,
			fmt.Sprintf("%.0f", coarse),
			fmt.Sprintf("%.0f", fine),
			fmt.Sprintf("%.2fx", fine/coarse),
			fmt.Sprintf("%.0f", wal),
			batchMean,
		)
	}
	return t, nil
}
