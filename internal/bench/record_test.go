package bench

import (
	"strings"
	"testing"
)

// tableWithOps builds a T3-shaped table whose 8-session throughput cell
// is the given value.
func tableWithOps(ops string) Table {
	return Table{
		ID:     "T3",
		Title:  "replica concurrency",
		Header: []string{"sessions", "fine-grained ops/s", "read ms"},
		Rows: [][]string{
			{"1", "5000", "0.50"},
			{"8", ops, "1.20"},
		},
	}
}

func TestNormalizeTablesClassifiesColumns(t *testing.T) {
	recs := NormalizeTables("BENCH_PR4.json", 4, "abc123", "2026-01-01", []Table{tableWithOps("10000")})
	want := map[string]struct {
		value  float64
		better string
	}{
		"fine-grained ops/s[1]": {5000, "higher"},
		"fine-grained ops/s[8]": {10000, "higher"},
		"read ms[1]":            {0.5, "lower"},
		"read ms[8]":            {1.2, "lower"},
	}
	if len(recs) != len(want) {
		t.Fatalf("want %d records, got %d: %+v", len(want), len(recs), recs)
	}
	for _, r := range recs {
		w, ok := want[r.Metric]
		if !ok {
			t.Fatalf("unexpected metric %q", r.Metric)
		}
		if r.Value != w.value || r.Better != w.better {
			t.Fatalf("metric %q: got (%g, %q), want (%g, %q)", r.Metric, r.Value, r.Better, w.value, w.better)
		}
		if r.Experiment != "T3" || r.PR != 4 || r.Commit != "abc123" {
			t.Fatalf("metric %q mis-stamped: %+v", r.Metric, r)
		}
	}
}

func TestNormalizeSkipsPlaceholders(t *testing.T) {
	tbl := Table{
		ID:     "X",
		Header: []string{"mode", "ops/s", "hit rate"},
		Rows:   [][]string{{"off", "n/a", "-"}, {"on", "1200", "93%"}},
	}
	recs := NormalizeTables("f", 1, "", "", []Table{tbl})
	if len(recs) != 2 {
		t.Fatalf("want 2 records (placeholders skipped), got %d: %+v", len(recs), recs)
	}
	for _, r := range recs {
		if r.Metric == "hit rate[on]" && r.Value != 93 {
			t.Fatalf("percent suffix not stripped: %+v", r)
		}
	}
}

// TestCheckRecordsGate pins the satellite acceptance case: a synthetic
// 20% throughput regression fails the 10% gate while a 5% wobble passes.
func TestCheckRecordsGate(t *testing.T) {
	base := NormalizeTables("BENCH_PR4.json", 4, "", "", []Table{tableWithOps("10000")})

	wobble := MergeRecords(base, NormalizeTables("BENCH_PR5.json", 5, "", "", []Table{tableWithOps("9500")}))
	regs, gated := CheckRecords(wobble, 10)
	if gated == 0 {
		t.Fatal("gate compared no metrics")
	}
	if len(regs) != 0 {
		t.Fatalf("5%% wobble flagged as regression: %+v", regs)
	}

	tanked := MergeRecords(base, NormalizeTables("BENCH_PR5.json", 5, "", "", []Table{tableWithOps("8000")}))
	regs, _ = CheckRecords(tanked, 10)
	if len(regs) != 1 {
		t.Fatalf("20%% regression not flagged exactly once: %+v", regs)
	}
	r := regs[0]
	if r.Metric != "fine-grained ops/s[8]" || r.PrevPR != 4 || r.LastPR != 5 {
		t.Fatalf("wrong regression identified: %+v", r)
	}
	if r.ChangePct > -19 || r.ChangePct < -21 {
		t.Fatalf("change pct %v not ~-20", r.ChangePct)
	}
}

// Lower-is-better metrics gate in the opposite direction.
func TestCheckRecordsLowerIsBetter(t *testing.T) {
	mk := func(pr int, ms string) []Record {
		return NormalizeTables("f", pr, "", "", []Table{{
			ID:     "R1",
			Header: []string{"offered ops/s", "p99 ms"},
			Rows:   [][]string{{"1000", ms}},
		}})
	}
	// "offered ops/s" is itself a gated higher-better column here; keep it
	// constant so only the latency moves.
	recs := MergeRecords(mk(7, "2.0"), mk(8, "3.0"))
	regs, _ := CheckRecords(recs, 10)
	if len(regs) != 1 || regs[0].Metric == "" || regs[0].Better != "lower" {
		t.Fatalf("latency increase not flagged: %+v", regs)
	}
	recs = MergeRecords(mk(7, "2.0"), mk(8, "1.5"))
	if regs, _ := CheckRecords(recs, 10); len(regs) != 0 {
		t.Fatalf("latency improvement flagged: %+v", regs)
	}
}

// Rate sweeps (tables with both an offered and an achieved ops/s
// column) derive a per-dimension-group "knee ops/s" record: the highest
// achieved throughput. The sweep's own rows all share one metric name —
// the rate is a measure, not a dimension — so without the derived
// record only the lowest-rate row would survive MergeRecords.
func TestNormalizeDerivesKnee(t *testing.T) {
	tbl := Table{
		ID:     "R1",
		Header: []string{"profile", "offered ops/s", "achieved ops/s", "p50 ms"},
		Rows: [][]string{
			{"replicated", "250", "249", "1.4"},
			{"replicated", "1000", "980", "2.1"},
			{"replicated", "2000", "1233", "9.8"},
			{"sharded", "250", "251", "1.2"},
			{"sharded", "1000", "997", "1.9"},
		},
	}
	recs := NormalizeTables("BENCH_PR9.json", 9, "", "", []Table{tbl})
	knees := map[string]float64{}
	for _, r := range recs {
		if strings.HasPrefix(r.Metric, "knee ops/s") {
			knees[r.Metric] = r.Value
			if r.Better != "higher" || r.Unit != "ops/s" || r.Experiment != "R1" {
				t.Fatalf("knee record mis-classified: %+v", r)
			}
		}
	}
	want := map[string]float64{
		"knee ops/s[replicated]": 1233,
		"knee ops/s[sharded]":    997,
	}
	if len(knees) != len(want) {
		t.Fatalf("want knees %v, got %v", want, knees)
	}
	for k, v := range want {
		if knees[k] != v {
			t.Fatalf("%s = %g, want %g", k, knees[k], v)
		}
	}
	// Tables without the offered/achieved pair derive nothing.
	for _, r := range NormalizeTables("f", 4, "", "", []Table{tableWithOps("10000")}) {
		if strings.HasPrefix(r.Metric, "knee") {
			t.Fatalf("knee derived for non-sweep table: %+v", r)
		}
	}
}

// MergeRecords must be append-only: re-normalizing an old file with new
// stamps never overwrites the recorded history.
func TestMergeRecordsAppendOnly(t *testing.T) {
	old := NormalizeTables("BENCH_PR4.json", 4, "oldcommit", "2026-01-01", []Table{tableWithOps("10000")})
	fresh := NormalizeTables("BENCH_PR4.json", 4, "newcommit", "2026-02-02", []Table{tableWithOps("10000")})
	merged := MergeRecords(old, fresh)
	if len(merged) != len(old) {
		t.Fatalf("duplicate keys appended: %d vs %d", len(merged), len(old))
	}
	for _, r := range merged {
		if r.Commit != "oldcommit" {
			t.Fatalf("existing record restamped: %+v", r)
		}
	}
}
