// Package securestore is a from-scratch Go implementation of the secure
// store of Lakshmanan, Ahamad and Venkateswaran, "A Secure and Highly
// Available Distributed Store for Meeting Diverse Data Storage Needs"
// (DSN 2001): a data repository replicated across n servers of which up
// to b may be Byzantine, where passive servers hold signed data and
// clients enforce Monotonic Read or Causal Consistency through per-session
// contexts.
//
// The public entry points live under internal/core (cluster assembly and
// client minting), internal/client (the protocols) and internal/deploy
// (TCP deployments); see README.md for a tour, DESIGN.md for the system
// inventory, and EXPERIMENTS.md for the measured reproduction of the
// paper's performance analysis. The root-level bench_test.go hosts one
// Go benchmark per experiment.
package securestore
