# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test race bench tables tables-quick examples cover docs

all: build test

build:
	go build ./...
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

tables:
	go run ./cmd/benchtab

tables-quick:
	go run ./cmd/benchtab -quick

examples:
	@for d in examples/*; do echo "== $$d"; go run ./$$d || exit 1; done

cover:
	go test -coverprofile=cover.out ./internal/...
	go tool cover -func=cover.out | tail -1

# The CI docs gate: formatting, vet, markdown link integrity, and
# doc-comment coverage for the observability packages.
docs:
	@test -z "$$(gofmt -l .)" || { gofmt -l .; exit 1; }
	go vet ./...
	go run ./cmd/doccheck
